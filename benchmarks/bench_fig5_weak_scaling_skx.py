"""E2 — Fig. 5: weak scaling on SKX (4096 RBCs + 8192 patches per node).

Paper: efficiency (vs 192 cores) 1.00, 0.88, 0.81, 0.71 at 192 -> 12288
cores; volume fractions 19-27%; collision fractions 13-17%; largest run has
1,048,576 RBCs and 3,042,967,552 unknowns per step.

Run as a script to *measure* weak scaling of the ``"process"`` executor
on this host — constant per-rank grain (``base`` cells per worker), each
sized run bit-compared against its own serial run — writing the
``"weak"`` section of ``BENCH_scaling.json``:

    PYTHONPATH=src python benchmarks/bench_fig5_weak_scaling_skx.py
        [--reduced] [--ranks N] [--steps K] [--base N] [--out PATH]

The gate is completion + exact bit-identity; efficiency columns are
informational on a single-core runner.
"""
import numpy as np

from repro.scaling import calibrate_costs, weak_scaling_table
from repro.scaling.harness import format_table

PAPER_EFF = [None, 1.00, 0.88, 0.81, 0.71]


def _run():
    costs = calibrate_costs(quick=True)
    return weak_scaling_table(costs=costs)


def test_fig5_weak_scaling_skx(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Fig. 5 reproduction (weak scaling, SKX) ===")
    print(format_table(rows, weak=True))
    print("paper eff:   ", PAPER_EFF)
    print("measured eff:", [round(r.efficiency, 2) for r in rows])
    effs = [r.efficiency for r in rows[1:]]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert effs[-1] > 0.5
    # Largest column matches the paper's cell/patch counts.
    assert rows[-1].n_rbc == 1048576
    assert rows[-1].n_patches == 2097152
    # DOF check: 4 dof per RBC point (X + tension), 3 per vessel node:
    dof = rows[-1].n_rbc * 544 * 4 + rows[-1].n_patches * 121 * 3
    assert abs(dof - 3042967552) / 3042967552 < 0.05


def main() -> int:
    import argparse
    import json
    import sys

    import scaling_cli

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--reduced", action="store_true",
                    help="CI smoke variant: 3 cells/rank, order 5")
    ap.add_argument("--ranks", type=int, default=4,
                    help="max process-pool worker count (default 4)")
    ap.add_argument("--steps", type=int, default=0,
                    help="steps per timed run (default: 2 reduced, 3 full)")
    ap.add_argument("--base", type=int, default=0,
                    help="cells per rank (default: 3 reduced, 6 full)")
    ap.add_argument("--out", default="benchmarks/BENCH_scaling.json")
    args = ap.parse_args()

    order = 5 if args.reduced else 6
    base = args.base or (3 if args.reduced else 6)
    steps = args.steps or (2 if args.reduced else 3)
    section = scaling_cli.measure_rows(
        lambda w: base * w, steps=steps, ranks=args.ranks, order=order,
        weak=True)
    section["scene"]["cells_per_rank"] = base
    section["scene"]["reduced"] = args.reduced

    model_rows = weak_scaling_table(costs=calibrate_costs(quick=True))
    section["paper_model"] = {
        "cores": [r.cores for r in model_rows],
        "efficiency": [round(r.efficiency, 2) for r in model_rows],
        "paper_efficiency": PAPER_EFF,
    }
    doc = scaling_cli.write_section(args.out, "weak", section)
    print(json.dumps(doc["weak"], indent=2))
    failures = scaling_cli.check_rows(section)
    if failures:
        print(f"bit-identity failures: {failures}", file=sys.stderr)
        return 1
    print(f"weak section written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E8 — Sec. 5.1: GMRES behaviour on the vessel boundary equation.

Paper: "the GMRES solver typically requires 30 iterations or less for
convergence for almost all time steps ... we cap the number of GMRES
iterations at 30". The bench solves the capsule-vessel boundary equation
with realistic inflow data and reports the iteration count at the cap
and the achieved residual.
"""
import numpy as np

from repro.bie import BoundarySolver
from repro.config import NumericsOptions
from repro.patches import capsule_tube
from repro.vessel import capsule_inlet_outlet_bc


def _run():
    opts = NumericsOptions(patch_quad=7, check_order=5, upsample_eta=1,
                           check_r_factor=0.2, gmres_max_iter=30,
                           gmres_tol=1e-8)
    vessel = capsule_tube(length=8.0, radius=1.5, refine=0, options=opts)
    solver = BoundarySolver(vessel, kernel="stokes", options=opts)
    g = capsule_inlet_outlet_bc(vessel, axis=2, flux=2.0)
    phi, rep = solver.solve(g.ravel())
    # residual of the boundary condition actually achieved
    return rep, solver, phi, g


def test_gmres_iteration_cap(benchmark):
    rep, solver, phi, g = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Sec. 5.1 reproduction (GMRES cap) ===")
    print(f"paper: <= 30 iterations typical; capped at 30")
    bc_err = np.abs(solver.apply(phi) - g).max() / max(np.abs(g).max(), 1e-12)
    print(f"measured: {rep.iterations} iterations, residual {rep.residual:.2e}, "
          f"relative BC error {bc_err:.2e}")
    assert rep.iterations <= 30
    # At this scaled-down resolution the capped solve reaches the
    # discretization floor (paper behaviour: cap then accept the
    # time-step-typical residual).
    assert rep.residual < 0.2
    assert bc_err < 0.15

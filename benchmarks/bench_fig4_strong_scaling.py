"""E1 — Fig. 4: strong scaling of the 40,960-RBC problem on SKX.

Paper (10 time steps): total time 11257 s at 384 cores falling to 718 s at
12288 cores — efficiency 1.00, 0.98, 0.86, 0.75, 0.63, 0.49; COL+BIE-solve
efficiency 1.00, 1.05, 0.93, 0.82, 0.77, 0.66. The model combines measured
per-unit costs of this library's kernels with the machine model (see
repro.scaling); shapes should match, absolute times are anchored at the
reference column.
"""
import numpy as np

from repro.scaling import calibrate_costs, strong_scaling_table
from repro.scaling.harness import format_table

PAPER_EFF = [1.00, 0.98, 0.86, 0.75, 0.63, 0.49]
PAPER_COLBIE_EFF = [1.00, 1.05, 0.93, 0.82, 0.77, 0.66]


def _run():
    costs = calibrate_costs(quick=True)
    return strong_scaling_table(costs=costs)


def test_fig4_strong_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Fig. 4 reproduction (strong scaling, SKX) ===")
    print(format_table(rows))
    print("paper total eff:   ", PAPER_EFF)
    print("measured total eff:", [round(r.efficiency, 2) for r in rows])
    print("paper COL+BIE eff: ", PAPER_COLBIE_EFF)
    print("measured COL+BIE:  ", [round(r.col_bie_efficiency, 2) for r in rows])
    # Shape assertions: monotone decay, endpoints in the paper's ballpark.
    effs = [r.efficiency for r in rows]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert abs(effs[-1] - PAPER_EFF[-1]) < 0.2
    assert abs(rows[-1].col_bie_efficiency - PAPER_COLBIE_EFF[-1]) < 0.2
    # FMM dominates the breakdown, as the paper reports.
    bd = rows[0].breakdown
    assert bd["BIE-FMM"] + bd["Other-FMM"] > bd["COL"] + bd["BIE-solve"]

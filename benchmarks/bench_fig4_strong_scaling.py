"""E1 — Fig. 4: strong scaling of the 40,960-RBC problem on SKX.

Paper (10 time steps): total time 11257 s at 384 cores falling to 718 s at
12288 cores — efficiency 1.00, 0.98, 0.86, 0.75, 0.63, 0.49; COL+BIE-solve
efficiency 1.00, 1.05, 0.93, 0.82, 0.77, 0.66. The model combines measured
per-unit costs of this library's kernels with the machine model (see
repro.scaling); shapes should match, absolute times are anchored at the
reference column.

Run as a script to *measure* strong scaling of the ``"process"``
executor on this host — a fixed lattice timed serially and at each
worker count, bit-compared against serial, with the communication
ledger and the local-model predicted efficiency per row — writing the
``"strong"`` section of ``BENCH_scaling.json``:

    PYTHONPATH=src python benchmarks/bench_fig4_strong_scaling.py
        [--reduced] [--ranks N] [--steps K] [--out PATH]

``--reduced`` is the CI smoke variant (8 cells, order 5). The gate is
completion + exact bit-identity; speedup columns are informational (a
single-core runner records dispatch overhead, honestly).
"""
import numpy as np

from repro.scaling import calibrate_costs, strong_scaling_table
from repro.scaling.harness import format_table

PAPER_EFF = [1.00, 0.98, 0.86, 0.75, 0.63, 0.49]
PAPER_COLBIE_EFF = [1.00, 1.05, 0.93, 0.82, 0.77, 0.66]


def _run():
    costs = calibrate_costs(quick=True)
    return strong_scaling_table(costs=costs)


def test_fig4_strong_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Fig. 4 reproduction (strong scaling, SKX) ===")
    print(format_table(rows))
    print("paper total eff:   ", PAPER_EFF)
    print("measured total eff:", [round(r.efficiency, 2) for r in rows])
    print("paper COL+BIE eff: ", PAPER_COLBIE_EFF)
    print("measured COL+BIE:  ", [round(r.col_bie_efficiency, 2) for r in rows])
    # Shape assertions: monotone decay, endpoints in the paper's ballpark.
    effs = [r.efficiency for r in rows]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert abs(effs[-1] - PAPER_EFF[-1]) < 0.2
    assert abs(rows[-1].col_bie_efficiency - PAPER_COLBIE_EFF[-1]) < 0.2
    # FMM dominates the breakdown, as the paper reports.
    bd = rows[0].breakdown
    assert bd["BIE-FMM"] + bd["Other-FMM"] > bd["COL"] + bd["BIE-solve"]


def main() -> int:
    import argparse
    import json
    import sys

    import scaling_cli

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--reduced", action="store_true",
                    help="CI smoke variant: 8 cells, order 5")
    ap.add_argument("--ranks", type=int, default=4,
                    help="max process-pool worker count (default 4)")
    ap.add_argument("--steps", type=int, default=0,
                    help="steps per timed run (default: 2 reduced, 3 full)")
    ap.add_argument("--out", default="benchmarks/BENCH_scaling.json")
    args = ap.parse_args()

    ncells, order = (8, 5) if args.reduced else (16, 6)
    steps = args.steps or (2 if args.reduced else 3)
    section = scaling_cli.measure_rows(
        lambda w: ncells, steps=steps, ranks=args.ranks, order=order)
    section["scene"]["ncells"] = ncells
    section["scene"]["reduced"] = args.reduced

    # The paper-scale model table (the pytest face of this bench), kept
    # next to the measured rows so measured-vs-model reads off one file.
    model_rows = strong_scaling_table(costs=calibrate_costs(quick=True))
    section["paper_model"] = {
        "cores": [r.cores for r in model_rows],
        "efficiency": [round(r.efficiency, 2) for r in model_rows],
        "col_bie_efficiency": [round(r.col_bie_efficiency, 2)
                               for r in model_rows],
        "paper_efficiency": PAPER_EFF,
        "paper_col_bie_efficiency": PAPER_COLBIE_EFF,
    }
    doc = scaling_cli.write_section(args.out, "strong", section)
    print(json.dumps(doc["strong"], indent=2))
    failures = scaling_cli.check_rows(section)
    if failures:
        print(f"bit-identity failures: {failures}", file=sys.stderr)
        return 1
    print(f"strong section written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and prints a paper-vs-measured comparison;
run with ``pytest benchmarks/ --benchmark-only -s`` to see the rows.
"""
import numpy as np
import pytest

from repro.config import NumericsOptions


@pytest.fixture
def bench_opts() -> NumericsOptions:
    """Scaled-down numerics used by the in-repo benchmark runs."""
    return NumericsOptions(patch_quad=7, check_order=5, upsample_eta=1,
                           check_r_factor=0.2, gmres_max_iter=30)

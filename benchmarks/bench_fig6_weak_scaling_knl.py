"""E3 — Fig. 6: weak scaling on KNL (512 RBCs + 1024 patches per node).

Paper: efficiency 1.00, 0.86, 0.73, 0.57, 0.47 from 136 to 34,816 cores;
the KNL grain is much smaller so communication-to-work is higher and
scaling is worse than SKX — the model must reproduce that ordering.
"""
import numpy as np

from repro.scaling import KNL, calibrate_costs, weak_scaling_table
from repro.scaling.harness import format_table

PAPER_EFF = [1.00, 0.86, 0.73, 0.57, 0.47]


def _run():
    costs = calibrate_costs(quick=True)
    knl = weak_scaling_table(machine=KNL, rbc_per_node=512,
                             patches_per_node=1024,
                             node_counts=(2, 8, 32, 128, 512),
                             volume_fractions=(0.17, 0.19, 0.20, 0.23, 0.26),
                             collision_fractions=(0.10, 0.15, 0.13, 0.17, 0.15),
                             ref_index=0, costs=costs)
    skx = weak_scaling_table(costs=costs)
    return knl, skx


def test_fig6_weak_scaling_knl(benchmark):
    knl, skx = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Fig. 6 reproduction (weak scaling, KNL) ===")
    print(format_table(knl, weak=True))
    print("paper eff:   ", PAPER_EFF)
    print("measured eff:", [round(r.efficiency, 2) for r in knl])
    effs = [r.efficiency for r in knl]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert abs(effs[-1] - PAPER_EFF[-1]) < 0.2
    assert knl[-1].cores == 34816
    # KNL scales worse than SKX (paper: 0.47 vs 0.71).
    assert knl[-1].efficiency < skx[-1].efficiency

"""E4 — Fig. 7: high-volume-fraction sedimentation under gravity.

Paper: 140 RBCs in a small capsule at 47% volume fraction sediment to the
bottom; the *local* volume fraction in the lower region rises to ~55%.
Scaled-down run: a handful of cells in a capsule container, gravity pulls
them down, collisions keep the packing interference-free; the measured
quantity is the same — the lower-half volume fraction must increase.
"""
import numpy as np

import dataclasses

from repro import Scenario, presets
from repro.config import NumericsOptions
from repro.patches import capsule_tube


def _lower_fraction(sim, lumen_half):
    vol = 0.0
    for c in sim.cells:
        if c.centroid()[2] < 0.0:
            vol += c.volume()
    return vol / lumen_half


def _run():
    opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                           check_r_factor=0.25, gmres_max_iter=10)
    vessel = capsule_tube(length=7.0, radius=1.6, refine=0, options=opts)

    def sd(pts):
        z = np.clip(pts[:, 2], -1.9, 1.9)
        ax = np.column_stack([np.zeros(len(pts)), np.zeros(len(pts)), z])
        return np.linalg.norm(pts - ax, axis=1) - 1.6

    # Seed the cells in the *upper* half so settling is visible in a
    # short run (the paper's Fig. 7 initial state is also top-loaded
    # relative to its final state).
    cfg = dataclasses.replace(
        presets.sedimentation(delta_rho=2.5, dt=0.08, bending_modulus=0.02),
        numerics=opts)
    sim = (Scenario.builder()
           .config(cfg)
           .vessel(vessel)
           .fill(sd, (np.array([-1.6, -1.6, -0.3]),
                      np.array([1.6, 1.6, 3.5])), spacing=1.3,
                 order=5, shape="sphere", seed=4)
           .build())
    lumen_half = vessel.volume() / 2.0
    vf0 = sim.volume_fraction()
    low0 = _lower_fraction(sim, lumen_half)
    z0 = sim.centroids()[:, 2].mean()
    sim.run(4)
    return dict(vf0=vf0, low0=low0, z0=z0,
                low1=_lower_fraction(sim, lumen_half),
                z1=sim.centroids()[:, 2].mean(),
                vf1=sim.volume_fraction(), sim=sim)


def test_fig7_sedimentation(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Fig. 7 reproduction (sedimentation; scaled down) ===")
    print(f"paper:    global vf 47%  -> lower-region vf ~55% after settling")
    print(f"measured: global vf {out['vf0']*100:.0f}% ; lower-half vf "
          f"{out['low0']*100:.0f}% -> {out['low1']*100:.0f}%"
          f" ; mean centroid z {out['z0']:.3f} -> {out['z1']:.3f}")
    # Cells sediment: mean height decreases, lower-half fraction grows.
    assert out["z1"] < out["z0"]
    assert out["low1"] >= out["low0"]
    # Total cell volume is conserved by the collision-resolved dynamics.
    assert abs(out["vf1"] - out["vf0"]) / out["vf0"] < 0.1

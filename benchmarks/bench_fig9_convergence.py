"""E5 — Fig. 9: convergence of the boundary solver.

Paper: interior Stokes problem with a known analytic solution; max
relative error of u_Gamma on the surface decays as O(L^7) with max patch
size L (p = 8 extrapolation, q = 16, eta = 2). Scaled-down run: the same
experiment with p = 5, q = 7, eta = 2 — the error must decay at high
order as L halves (both Laplace and Stokes instances of the same solver).
"""
import numpy as np

from repro.bie import BoundarySolver
from repro.config import NumericsOptions
from repro.kernels import stokes_slp_apply
from repro.patches import cube_sphere

OPTS = NumericsOptions(patch_quad=7, check_order=5, upsample_eta=2,
                       check_r_factor=0.15, gmres_max_iter=60)
X0 = np.array([2.5, 0.3, 0.1])
TARGETS = np.array([[0.0, 0.0, 0.0], [0.3, -0.2, 0.4], [0.0, 0.55, 0.0]])


def _laplace_errors():
    uex = lambda p: 1.0 / np.linalg.norm(p - X0, axis=1)
    out = []
    for refine in (0, 1):
        s = cube_sphere(refine=refine, options=OPTS)
        solver = BoundarySolver(s, kernel="laplace", options=OPTS)
        phi, _ = solver.solve(uex(solver.coarse.points))
        u = solver.evaluate(phi, TARGETS)
        rel = np.abs(u - uex(TARGETS)).max() / np.abs(uex(TARGETS)).max()
        out.append((s.patch_sizes().max(), rel))
    return out


def _stokes_error():
    f0 = np.array([1.0, 2.0, -0.5])
    uex = lambda p: stokes_slp_apply(X0[None, :], f0[None, :], p)
    s = cube_sphere(refine=0, options=OPTS)
    solver = BoundarySolver(s, kernel="stokes", options=OPTS)
    phi, rep = solver.solve(uex(solver.coarse.points).ravel())
    u = solver.evaluate(phi, TARGETS)
    rel = np.abs(u - uex(TARGETS)).max() / np.abs(uex(TARGETS)).max()
    return s.patch_sizes().max(), rel, rep.iterations


def test_fig9_convergence(benchmark):
    lap = benchmark.pedantic(_laplace_errors, rounds=1, iterations=1)
    stk = _stokes_error()
    order = np.log2(lap[0][1] / lap[1][1]) / np.log2(lap[0][0] / lap[1][0])
    print("\n=== Fig. 9 reproduction (boundary-solver convergence) ===")
    print("paper: max rel error = O(L^7) with p=8, q=16, eta=2")
    for L, e in lap:
        print(f"  laplace  L={L:.3f}  max rel err={e:.3e}")
    print(f"  observed order ~ L^{order:.1f}  (p=5 extrapolation here)")
    print(f"  stokes   L={stk[0]:.3f}  max rel err={stk[1]:.3e} "
          f"(GMRES iters={stk[2]})")
    # high-order decay: error drops by >2x when L halves
    assert lap[1][1] < lap[0][1] / 2.0
    assert stk[1] < 5e-2

"""Many-scene sweep throughput: N independent jobs vs one-at-a-time.

The production workload (ROADMAP item 2) is thousands of *independent*
scenes, where parallelism across scenes is embarrassingly free — no
ghost exchange, no gather, one pickle of the job in and one result out.
This bench measures what :class:`repro.sweep.SweepRunner` delivers on
this host:

- ``single_job_s``: one warm solo :func:`repro.sweep.run_scene` call —
  the unit of work;
- one sweep row per (executor, workers): elapsed wall clock, jobs/s
  throughput, speedup vs the serial sweep, efficiency vs the ideal
  ``workers``-fold speedup, and the max per-job trajectory deviation vs
  running that job alone (**exactly 0.0** by the sweep contract — this
  is the CI gate);
- ``warm_cache_build_s`` vs ``warm_cache_revisit_s``: the per-order
  shared-table cost the parent fronts once so workers inherit the
  tables copy-on-write instead of rebuilding them per job.

The throughput gate (``> 0.8 * workers`` jobs-per-second scaling) is
meaningful only where cores exist; on a single-core host the process
rows can only show dispatch + pickle overhead, and the committed
numbers must say so honestly — bit-identity, not speedup, is what CI
gates everywhere (same policy as ``BENCH_scaling.json``).

Run:  PYTHONPATH=src python benchmarks/bench_sweep_throughput.py
      [--jobs N] [--steps N] [--order N] [--workers N] [--out FILE]
"""
from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.config import NumericsOptions, ReproConfig
from repro.physics.terms import Bending, Tension
from repro.runtime import warm_caches
from repro.surfaces import biconcave_rbc
from repro.sweep import SceneJob, SweepRunner, run_scene


def sweep_jobs(n: int, order: int, steps: int) -> list:
    """N single-cell relaxation jobs with distinct bending moduli."""
    jobs = []
    for i in range(n):
        cfg = ReproConfig(dt=0.05, viscosity=1.0,
                          forces=[Bending(0.03 + 0.01 * i), Tension()],
                          backend="direct", with_collisions=False,
                          numerics=NumericsOptions())
        jobs.append(SceneJob.from_cells(
            f"job{i}", cfg, [biconcave_rbc(1.0, order=order)],
            n_steps=steps))
    return jobs


def max_deviation(ref_results, sweep_results) -> float:
    dev = 0.0
    for a, b in zip(ref_results, sweep_results):
        for X, Y in zip(a.positions, b.positions):
            dev = max(dev, float(np.abs(X - Y).max()))
    return dev


def measure(args) -> dict:
    # Warm the shared per-order tables once, up front, and price both
    # the cold build and the (cache-hit) revisit.
    t0 = time.perf_counter()
    warm_caches([args.order])
    warm_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_caches([args.order])
    warm_revisit = time.perf_counter() - t0

    jobs = sweep_jobs(args.jobs, args.order, args.steps)

    # The unit of work, solo and warm (also the bit-identity reference).
    t0 = time.perf_counter()
    ref = [run_scene(j) for j in jobs]
    solo_elapsed = time.perf_counter() - t0
    single_job_s = solo_elapsed / args.jobs

    rows = []
    serial_elapsed = None
    for executor, workers in [("serial", 1), ("thread", args.workers),
                              ("process", args.workers)]:
        t0 = time.perf_counter()
        report = SweepRunner(jobs, executor=executor,
                             workers=workers).run()
        elapsed = time.perf_counter() - t0
        if executor == "serial":
            serial_elapsed = elapsed
        statuses = [r.status for r in report.results]
        assert statuses == ["completed"] * args.jobs, statuses
        rows.append({
            "executor": executor,
            "workers": workers,
            "jobs": args.jobs,
            "elapsed_s": round(elapsed, 3),
            "jobs_per_s": round(args.jobs / elapsed, 3),
            "speedup_vs_serial_sweep": round(serial_elapsed / elapsed, 3),
            "efficiency": round(serial_elapsed / elapsed / workers, 3),
            "max_traj_deviation_vs_solo": max_deviation(
                ref, report.results),
        })

    ncpu = os.cpu_count() or 1
    return {
        "host": {
            "cpu_count": ncpu,
            "note": ("single-core container: process/thread sweep rows "
                     "cannot beat the serial sweep (dispatch + pickle "
                     "overhead only); the bit-identity column is the "
                     "gate here, the >0.8*workers throughput gate "
                     "applies only where cores exist"
                     if ncpu < args.workers else
                     f"{ncpu} cores: the >0.8*workers throughput gate "
                     "is measurable on this host"),
        },
        "scene": {"order": args.order, "ncells_per_job": 1,
                  "steps": args.steps, "backend": "direct"},
        "warm_cache_build_s": round(warm_build, 4),
        "warm_cache_revisit_s": round(warm_revisit, 6),
        "single_job_s": round(single_job_s, 3),
        "sweeps": rows,
        "gates": {
            "bit_identity":
                "max_traj_deviation_vs_solo == 0.0 on every row "
                "(enforced by CI sweep-smoke and this script's exit "
                "code everywhere)",
            "throughput":
                "process row jobs_per_s > 0.8 * workers * serial row "
                "jobs_per_s (enforced only when cpu_count >= workers)",
        },
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--order", type=int, default=6)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_sweep.json"))
    args = ap.parse_args()

    payload = measure(args)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    ok = True
    serial_rate = payload["sweeps"][0]["jobs_per_s"]
    for row in payload["sweeps"]:
        dev = row["max_traj_deviation_vs_solo"]
        print(f"[bench] {row['executor']:>7} x{row['workers']}: "
              f"{row['elapsed_s']:7.2f}s  {row['jobs_per_s']:6.3f} jobs/s"
              f"  speedup {row['speedup_vs_serial_sweep']:5.2f}"
              f"  deviation {dev:.1e}")
        if dev != 0.0:
            print(f"FAIL: {row['executor']} sweep deviates from solo runs")
            ok = False
        if (row["executor"] == "process"
                and (os.cpu_count() or 1) >= row["workers"]
                and row["jobs_per_s"] <= 0.8 * row["workers"] * serial_rate):
            print("FAIL: process sweep below the 0.8*workers "
                  "throughput gate on a multi-core host")
            ok = False
    print(f"[bench] wrote {args.out}")
    raise SystemExit(0 if ok else 1)


if __name__ == "__main__":
    main()

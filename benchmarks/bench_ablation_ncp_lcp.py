"""A3 — ablation: LCP solves per NCP projection.

Paper Sec. 4: "our algorithm uses around seven LCP solves to
approximately solve the NCP" ([53] argues one can suffice). The bench
measures the LCP count and residual penetration for increasingly violent
candidate overlaps.
"""
import numpy as np

from repro.collision import NCPSolver
from repro.surfaces import sphere
from repro.vesicle import SingularSelfInteraction


def _run():
    rows = []
    for push in (0.1, 0.25, 0.4):
        s1 = sphere(1.0, order=6)
        s2 = sphere(1.0, center=(2.3, 0, 0), order=6)
        ops = [SingularSelfInteraction(s) for s in (s1, s2)]
        ncp = NCPSolver(boundary_meshes=[])
        cand = [s1.X + np.array([push, 0, 0]),
                s2.X - np.array([push, 0, 0])]
        _, rep = ncp.project([s1, s2], cand, [o.apply for o in ops], dt=0.1)
        rows.append((push, rep.lcp_solves, rep.max_penetration_before,
                     rep.max_penetration_after))
    return rows


def test_ablation_ncp_lcp_count(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== A3: LCP solves per NCP projection ===")
    print("paper: ~7 LCP linearizations per time step (cap)")
    for push, n, before, after in rows:
        print(f"  push={push:0.2f}: {n} LCP solve(s), |V| {before:.3e} -> "
              f"{after:.3e}")
    for push, n, before, after in rows:
        assert 1 <= n <= 7
        assert after < 0.25 * before + 1e-12

"""A2 — ablation: check-point extrapolation order p and radius R.

DESIGN.md calls out the check-point parameters (paper Sec. 5.1: R = r =
0.15 L strong scaling, 0.1 L weak scaling; Fig. 9 uses p = 8). This
ablation sweeps (p, R-factor) on the Laplace sphere problem and reports
the error landscape: larger R improves the smooth-quadrature accuracy at
the check points but grows the extrapolation error; moderate values win.
"""
import numpy as np

from repro.bie import BoundarySolver
from repro.config import NumericsOptions
from repro.patches import cube_sphere

X0 = np.array([2.5, 0.3, 0.1])


def _solve_error(p, rf):
    opts = NumericsOptions(patch_quad=7, check_order=p, upsample_eta=1,
                           check_r_factor=rf, gmres_max_iter=40)
    s = cube_sphere(refine=0, options=opts)
    solver = BoundarySolver(s, kernel="laplace", options=opts)
    uex = lambda q: 1.0 / np.linalg.norm(q - X0, axis=1)
    phi, _ = solver.solve(uex(solver.coarse.points))
    targets = np.array([[0.0, 0.0, 0.0], [0.3, -0.2, 0.4]])
    return np.abs(solver.evaluate(phi, targets) - uex(targets)).max()


def _run():
    out = {}
    for p in (3, 5, 7):
        for rf in (0.1, 0.2, 0.35):
            out[(p, rf)] = _solve_error(p, rf)
    return out


def test_ablation_extrapolation(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== A2: extrapolation order/radius sweep (Laplace sphere) ===")
    for (p, rf), e in sorted(table.items()):
        print(f"  p={p}  R={rf:0.2f}L  err={e:.3e}")
    # The landscape is a genuine trade-off: the moderate radius wins
    # (R=0.2L resolves the check values on this fine grid), while tiny R
    # under-resolves the quadrature and large R (or high p at this coarse
    # resolution) blows up the extrapolation.
    best = min(table.values())
    assert best < 1e-3
    assert min(table[(3, 0.2)], table[(5, 0.2)]) == best or \
        min(table[(3, 0.2)], table[(5, 0.2)]) < 1e-3
    assert table[(3, 0.2)] < table[(3, 0.1)]
    assert table[(3, 0.2)] < table[(3, 0.35)]

"""A1 — ablation: kernel-independent treecode vs direct summation.

The paper's discussion attributes the runtime to FMM evaluations; this
ablation locates the N where the O(N log N) treecode overtakes the
O(N^2) direct sum in this implementation, and verifies the accuracy knob.
"""
import time

import numpy as np

from repro.fmm import KernelIndependentTreecode
from repro.kernels import stokes_slp_apply


def _run():
    rng = np.random.default_rng(0)
    rows = []
    for n in (2000, 8000, 32000):
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        trg = src[:512]
        t0 = time.perf_counter()
        ref = stokes_slp_apply(src, den, trg)
        t_dir = time.perf_counter() - t0
        t0 = time.perf_counter()
        tc = KernelIndependentTreecode(src, den, "stokes_slp")
        u = tc.evaluate(trg)
        t_fmm = time.perf_counter() - t0
        err = np.abs(u - ref).max() / np.abs(ref).max()
        rows.append((n, t_dir, t_fmm, err))
    return rows


def test_ablation_fmm_vs_direct(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== A1: treecode vs direct (Stokes single layer) ===")
    for n, t_dir, t_fmm, err in rows:
        print(f"  N={n:>6}  direct {t_dir:6.2f}s  treecode {t_fmm:6.2f}s  "
              f"rel err {err:.1e}")
    # accuracy holds across sizes
    assert all(err < 5e-2 for *_, err in rows)
    # treecode wins (or ties) at the largest size
    n, t_dir, t_fmm, _ = rows[-1]
    assert t_fmm < 1.6 * t_dir

"""A1 — ablation: hierarchical summation vs direct summation.

The paper's discussion attributes the runtime to FMM evaluations; this
ablation locates the N where the O(N log N) treecode and the O(N)
global FMM overtake the O(N^2) direct sum in this implementation,
verifies the accuracy knob, and reports the FMM's operation counters
(p2p/m2p/m2l/l2p/p2l interaction counts) so regressions in the list
construction show up as counter blow-ups rather than silent slowdowns.
"""
import time

import numpy as np

from repro.fmm import GlobalKIFMM, KernelIndependentTreecode
from repro.kernels import stokes_slp_apply


def _run():
    rng = np.random.default_rng(0)
    rows = []
    for n in (2000, 8000, 32000):
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        # evaluate at every source point -- the self-interaction shape
        # a boundary-integral step actually needs (direct is O(n^2))
        t0 = time.perf_counter()
        ref = stokes_slp_apply(src, den, src)
        t_dir = time.perf_counter() - t0
        t0 = time.perf_counter()
        tc = KernelIndependentTreecode(src, den, "stokes_slp")
        u_tc = tc.evaluate(src)
        t_tc = time.perf_counter() - t0
        t0 = time.perf_counter()
        fmm = GlobalKIFMM(src, den, "stokes_slp")
        u_fmm = fmm.evaluate(src)
        t_fmm = time.perf_counter() - t0
        err_tc = np.abs(u_tc - ref).max() / np.abs(ref).max()
        err_fmm = np.abs(u_fmm - ref).max() / np.abs(ref).max()
        rows.append((n, t_dir, t_tc, err_tc, t_fmm, err_fmm,
                     dict(fmm.stats)))
    return rows


def test_ablation_fmm_vs_direct(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== A1: treecode / global FMM vs direct (Stokes SLP) ===")
    for n, t_dir, t_tc, err_tc, t_fmm, err_fmm, stats in rows:
        print(f"  N={n:>6}  direct {t_dir:6.2f}s  "
              f"treecode {t_tc:6.2f}s (err {err_tc:.1e})  "
              f"fmm {t_fmm:6.2f}s (err {err_fmm:.1e})")
        counts = "  ".join(f"{k}={v:.2e}" for k, v in sorted(stats.items()))
        print(f"           fmm counters: {counts}")
    # accuracy holds across sizes for both hierarchical routes
    assert all(err_tc < 5e-2 and err_fmm < 5e-2
               for _n, _td, _tt, err_tc, _tf, err_fmm, _s in rows)
    # both hierarchical sums win outright at the largest size
    n, t_dir, t_tc, _, t_fmm, _, _ = rows[-1]
    assert t_tc < t_dir
    assert t_fmm < t_dir
    # the FMM's near field stays a bounded fraction of the brute-force
    # pair count -- a blow-up here means broken U-list construction
    stats = rows[-1][-1]
    assert stats["p2p"] < 0.5 * n * n

"""Quickstart: one red blood cell relaxing in quiescent fluid.

Tour of the public API: build a biconcave RBC surface, inspect its
geometry, then assemble a scenario with the fluent builder — a
:class:`repro.ReproConfig` preset plus composable force terms — and run
a few locally-implicit time steps of pure bending relaxation (no
background flow, no walls). The Helfrich energy must decrease
monotonically.

The configuration is a single serializable object: ``cfg.to_json()``
round-trips through ``ReproConfig.from_json``, so a run's physics and
numerics can be archived next to its outputs. (The old flag-style
``SimulationConfig`` still works but is deprecated.)

Run:  python examples/quickstart.py
"""
import os
import tempfile

from repro import ReproConfig, Scenario, load_checkpoint, presets, \
    save_checkpoint
from repro.physics import bending_energy
from repro.surfaces import biconcave_rbc


def main() -> None:
    # An RBC surface is a spectral (spherical-harmonic) closed surface.
    cell = biconcave_rbc(radius=1.0, order=8)
    print("=== the cell ===")
    print(f"surface points : {cell.n_points}")
    print(f"area           : {cell.area():.4f}")
    print(f"volume         : {cell.volume():.4f}")
    print(f"reduced volume : {cell.reduced_volume():.3f}  (sphere = 1, RBC ~ 0.64)")

    # A scenario couples membrane mechanics to the Stokes mobility; the
    # relaxation preset is just bending, no collisions.
    cfg = presets.relaxation(dt=0.05, bending_modulus=0.05)
    assert ReproConfig.from_json(cfg.to_json()) == cfg  # archivable
    sim = Scenario.builder().config(cfg).cell(cell).build()

    # The per-cell solves (tension Schur complement, implicit bending)
    # are direct by default: the operators are assembled as dense
    # matrices and LU-factorized once per refresh, with the matrix-free
    # GMRES paths kept behind cfg.numerics.direct_tension /
    # direct_implicit. Setting cfg.numerics.selfop_refresh_interval = k
    # reassembles the singular self-interaction operator (and those
    # factorizations) only every k-th step, applying a first-order
    # geometric correction (exact for rigid motion: translation,
    # rotation, dilation) in between — about 2x faster stepping at
    # ~1e-5 trajectory deviation on the benchmark scene; k = 1 (the
    # default) reproduces the exact per-step path.
    #
    # Every per-cell stage (operator refresh, factorize-and-solve,
    # per-source interaction sums) is an independent task mapped over a
    # pluggable executor: cfg.numerics.executor = "thread" with
    # cfg.numerics.workers = N scales the dense stages across N cores,
    # bit-identical to the serial default (results are gathered by cell
    # index). cfg.numerics.farfield_dtype = "float32" additionally runs
    # the far-field smooth quadrature in single precision (~1e-6
    # relative far-field error; every near/singular path stays float64).
    #
    # === Scaling out ====================================================
    # cfg.numerics.executor = "process" steps past the GIL: the cell-cell
    # interaction sum is sharded over worker *processes* by the same
    # Morton space-filling-curve partition the scaling harness models.
    # Workers never receive pickled operator caches — the per-order
    # tables (Legendre, rotation, circulant mode symbols) are
    # geometry-independent and are rebuilt locally in each worker; only
    # spectral coefficients, positions, and densities cross the process
    # boundary, and that traffic is priced through the
    # repro.runtime.CommLedger (scatter / ghost alltoallv / gather), the
    # same ledger the perfmodel uses to predict paper-scale runs.
    # Results are gathered by cell index, so process == thread == serial
    # *bit-identically* — "checked-process" wraps the pool in the
    # verifying executor if you want that enforced at runtime.
    # cfg.numerics.workers = "auto" resolves to min(cpu_count, ncells)
    # (a single-core host degenerates to serial dispatch; small scenes
    # never over-shard). Strong/weak scaling of the process executor
    # against the calibrated performance model is measured by
    #   python benchmarks/bench_fig4_strong_scaling.py --ranks 4
    #   python benchmarks/bench_fig5_weak_scaling_skx.py --ranks 4
    # which write the committed benchmarks/BENCH_scaling.json.
    #
    # Determinism contract & tooling: per-cell tasks may only write
    # state owned by their own cell, and every lru-cached numpy table
    # (quadrature nodes, Legendre/rotation tables, operator matrices)
    # is frozen read-only at construction — that is what makes the
    # threaded schedule bit-identical to serial. The contract is
    # enforced three ways: statically by `python -m repro_lint src/`
    # (an AST pass over every executor.map call site, run in CI);
    # dynamically by cfg.numerics.executor = "checked", which wraps the
    # real executor, holds all shared tables non-writeable during each
    # map and re-runs a sample of tasks to confirm bit-identical
    # results; and at the array level by cfg.numerics.debug_checks =
    # True (or REPRO_DEBUG=1), which verifies the @checked shape/dtype
    # contracts on the hot seams (stokes kernel, stacked LU, SHT,
    # surface operators) — off by default and near-zero-cost.
    #
    # Multi-cell scenes choose the cell-cell summation backend with
    # cfg.backend (or .backend("name", **knobs) on the builder). All
    # three agree to the stated accuracy and share the near-singular
    # pipeline; they differ in how the smooth far field is summed.
    # Guidance by cell count (64-cell order-16 suspension, one core;
    # wall-clock is prepare + cell_cell per step):
    #
    #   ncell    backend     why
    #   -------  ----------  ------------------------------------------
    #   1-8      "direct"    exact O(ncell^2) pairwise sums; lowest
    #                        constant, nothing to tune
    #   8-32     "treecode"  per-source-cell octrees, O(N log N);
    #                        crossover vs direct is ~8 cells
    #   32+      "fmm"       one global octree, two-pass kernel-
    #                        independent FMM, O(N): 8s vs treecode 16s
    #                        vs direct 96s at 64 cells, rel error 3e-5
    #
    # The fmm backend's equiv_points_per_edge knob trades speed for
    # accuracy (4 -> ~2e-4, 5 (default) -> ~1e-5, 8 -> ~1e-7 relative
    # to direct); max_leaf (default 400) trades near-field P2P against
    # translation work and rarely needs touching.
    #
    # cfg.numerics.selfop_assembly selects how the full reassembly is
    # built. "auto" (the default) currently always picks "circulant" —
    # the FFT-diagonalized block-circulant assembly, which is exact for
    # arbitrary shapes, ~2x faster than the fused route on the
    # order-8 benchmark scene, assembles same-order cell groups as one
    # stacked pass, and has no memory gate, so spherical-harmonic orders
    # of 12 and beyond (previously blocked by the fused table's ~256 MB
    # budget at order ~10) are practical. "fused" keeps the per-target
    # route as an independently implemented reference; all routes agree
    # to ~1e-12. cfg.numerics.batched_lu = True (default) additionally
    # factorizes the per-cell direct solves of an equal-order cell group
    # in one stacked getrf pass, bit-identical to the per-cell LAPACK
    # calls.
    n = cfg.numerics
    print(f"direct solves  : tension={n.direct_tension} "
          f"implicit={n.direct_implicit} "
          f"selfop_refresh_interval={n.selfop_refresh_interval}")
    print(f"assembly       : selfop_assembly={n.selfop_assembly!r} "
          f"batched_lu={n.batched_lu}")
    print(f"execution      : executor={n.executor!r} workers={n.workers} "
          f"farfield_dtype={n.farfield_dtype!r}")

    kappa = cfg.bending_modulus
    print("\n=== bending relaxation ===")
    print(f"{'step':>4} {'t':>6} {'energy':>12} {'area':>10} {'volume':>10}")
    for k in range(6):
        E = bending_energy(sim.cells[0], kappa)
        print(f"{k:>4} {sim.t:>6.2f} {E:>12.6f} "
              f"{sim.cells[0].area():>10.5f} {sim.cells[0].volume():>10.5f}")
        sim.step()
    E = bending_energy(sim.cells[0], kappa)
    print(f"{6:>4} {sim.t:>6.2f} {E:>12.6f}")
    print("\nbending energy decreases as the biconcave shape relaxes; "
          "area/volume drift is the (first-order) time-stepping error.")

    # === Resilience & checkpointing =====================================
    # Every sim.step() above was already a *transaction*: the mutable
    # per-cell state is snapshotted, the stepped state is validated by a
    # health sentinel (finite positions/tensions, per-cell area/volume
    # drift bounds, the solver convergence flags the step computed
    # anyway), and a failed — or crashed — step is rolled back and
    # retried at half the time step, sub-stepping back onto the nominal
    # time grid. Healthy steps are bit-identical to stepping with the
    # layer off, and the sentinel's cost is gated at <3% of ms/step by
    # benchmarks/bench_step_breakdown.py. The policy lives in
    # cfg.resilience (a repro.ResilienceOptions): the retry budget
    # (max_retries), the smallest sub-step (dt_floor_factor), the drift
    # bounds, which findings reject a step, and the backend degradation
    # chain — on non-finite far-field output the fast summation backend
    # is permanently degraded along degradation_order
    # (fmm -> treecode -> direct) instead of failing the run. When the
    # budget or the dt floor is exhausted, step() raises
    # repro.StepRejectedError with the state rolled back, and
    # report.health / report.retries / report.substeps record what
    # happened on every accepted step.
    r = cfg.resilience
    print("\n=== resilience & checkpointing ===")
    print(f"policy         : enabled={r.enabled} max_retries={r.max_retries} "
          f"dt_floor_factor={r.dt_floor_factor:g}")
    print(f"drift bounds   : area={r.max_area_drift:g} "
          f"volume={r.max_volume_drift:g}")
    print(f"degradation    : {' -> '.join(r.degradation_order)} "
          f"(backend_degradation={r.backend_degradation})")
    health = sim.history[-1].health
    print(f"last step      : healthy={health.healthy} "
          f"area_drift={health.area_drift:.2e} "
          f"volume_drift={health.volume_drift:.2e} "
          f"retries={sim.history[-1].retries}")

    # A checkpoint serializes everything the trajectory depends on —
    # positions, spectral coefficients, tensions, the factorized
    # per-cell operators mid-refresh-cycle, the full config — so a
    # resumed run is *bit-identical* to one that never stopped (pinned
    # by tests/test_resilience.py and the nightly kill/resume smoke).
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(sim, os.path.join(tmp, "quickstart"))
        resumed = load_checkpoint(path)
        resumed.step()
        sim.step()
        same = (resumed.cells[0].X == sim.cells[0].X).all()
        print(f"checkpoint     : saved at t={resumed.t - cfg.dt:.2f}, "
              f"resumed one step bit-identical: {bool(same)}")

    # === Running sweeps =================================================
    # The production workload is rarely one big scene — it is many
    # *independent* scenes (a parameter sweep, per-patient configs).
    # repro.sweep makes one scene a serializable, schedulable unit:
    # a SceneJob is just a ReproConfig + initial cell state + duration,
    # and SweepRunner multiplexes N of them over the same executor
    # registry ("serial" / "thread" / "process") the per-cell stages
    # use. The guarantees, in order of importance:
    #
    # - bit-identity: every job runs through the same pure run_scene(),
    #   so an N-job process sweep's trajectories are bit-identical to
    #   running each job alone (gated by the CI sweep-smoke lane);
    # - failure isolation: one scene's StepRejectedError (or crash)
    #   lands as a "failed" SceneResult; the rest of the sweep runs on;
    # - kill/resume: give the runner a workdir and each job checkpoints
    #   periodically while completed jobs land in an atomically-updated
    #   manifest — re-running an interrupted sweep restores finished
    #   jobs verbatim and resumes the rest from their frontier
    #   (vessel/recycler scenes, where Simulation.checkpointable is
    #   False, degrade to non-resumable jobs instead of aborting);
    # - warm caches: the geometry-independent per-order tables every
    #   scene of the same order shares are pre-built once in the parent
    #   (repro.runtime.warm_caches), so forked workers inherit them
    #   copy-on-write instead of rebuilding them per job.
    #
    # Throughput vs one-at-a-time is measured (and the bit-identity
    # gate enforced) by benchmarks/bench_sweep_throughput.py, which
    # writes the committed benchmarks/BENCH_sweep.json.
    from repro.sweep import SceneJob, SweepRunner
    jobs = [SceneJob.from_cells(
        f"kappa={kappa:g}", presets.relaxation(dt=0.05,
                                               bending_modulus=kappa),
        [biconcave_rbc(radius=1.0, order=6)], n_steps=2)
        for kappa in (0.03, 0.05, 0.08)]
    report = SweepRunner(jobs, executor="process", workers="auto").run()
    print("\n=== parameter sweep (3 scenes, process executor) ===")
    for res in report.results:
        print(f"{res.job_id:>12} : {res.status}  t={res.t:.2f}  "
              f"steps={res.steps_done}")


if __name__ == "__main__":
    main()

"""Vascular tree network: geometry, filling, and parallel distribution.

Builds the random binary vascular tree (the stand-in for the paper's
Fig. 1 capillary geometry), fills it with RBCs, and walks through the
parallel infrastructure the paper builds on p4est and MPI:

- the forest of quadtrees over the vessel patches, refined and
  partitioned across ranks in Morton order,
- the Morton-ordered cell partition,
- the parallel broad phase for collision candidates running through the
  virtual communicator, with the communication ledger reporting what the
  exchange would cost.

Run:  python examples/network_partition.py
"""
import numpy as np

from repro.collision import candidate_object_pairs, cell_collision_mesh
from repro.config import NumericsOptions
from repro.patches import QuadForest
from repro.runtime import VirtualComm, partition_by_morton
from repro.vessel import demo_tree_network, fill_with_rbcs


def main() -> None:
    opts = NumericsOptions(patch_quad=7)
    net = demo_tree_network(levels=3, options=opts)
    print("=== vascular tree ===")
    print(f"nodes {net.graph.number_of_nodes()}, edges "
          f"{net.graph.number_of_edges()}, terminals {len(net.terminals())}")

    patches = net.all_patches(refine=0)
    print(f"vessel patches: {len(patches)}")

    # p4est-substitute: refine the patch forest once, partition to ranks.
    forest = QuadForest(patches)
    forest.refine()
    P = 8
    parts = forest.partition(P)
    print(f"forest leaves after refinement: {forest.n_leaves}; "
          f"partition sizes over {P} ranks: {[len(p) for p in parts]}")

    # Fill the lumen with RBCs (paper Sec. 5.1 algorithm).
    lo, hi = net.bounding_box()
    lumen = net.lumen_volume(samples_per_axis=25)
    fill = fill_with_rbcs(net.signed_distance, (lo, hi), spacing=0.9,
                          lumen_volume=lumen, order=5, shape="rbc",
                          seed=7, max_cells=40)
    print(f"\n=== filling ===")
    print(f"{fill.n_cells} RBCs, volume fraction "
          f"{fill.volume_fraction * 100:.1f}%")

    cell_parts = partition_by_morton(fill.centers, P)
    print(f"Morton cell partition sizes: {[len(p) for p in cell_parts]}")

    # Parallel collision broad phase through the ledgered communicator.
    comm = VirtualComm(P)
    comm.set_phase("COL")
    meshes = [cell_collision_mesh(c, i) for i, c in enumerate(fill.cells)]
    pairs = candidate_object_pairs(meshes, [None] * len(meshes), 0.05,
                                   comm=comm)
    print(f"\n=== parallel broad phase ({P} virtual ranks) ===")
    print(f"candidate near pairs: {len(pairs)} "
          f"(all-pairs would be {fill.n_cells * (fill.n_cells - 1) // 2})")
    print(f"ledger: {comm.ledger.total_messages()} messages, "
          f"{comm.ledger.total_bytes()} bytes in phase COL")


if __name__ == "__main__":
    main()

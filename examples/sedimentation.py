"""Gravity sedimentation at high volume fraction (mini paper Fig. 7).

Cells denser than the ambient fluid settle inside a closed capsule; the
collision solver keeps the packing interference-free as the lower region
crowds up. The scenario is the ``presets.sedimentation`` configuration —
bending plus a ``Gravity`` force term — assembled with the fluent
builder. Reports the lower-half volume fraction over time, the paper's
Fig. 7 observable (47% global -> ~55% local there).

Run:  python examples/sedimentation.py
"""
import numpy as np

from repro import Scenario, presets
from repro.patches import capsule_tube


def main() -> None:
    cfg = presets.sedimentation(delta_rho=1.5, dt=0.08,
                                bending_modulus=0.02)
    container = capsule_tube(length=7.0, radius=1.6, refine=0,
                             options=cfg.numerics)

    def sd(pts):
        z = np.clip(pts[:, 2], -1.9, 1.9)
        ax = np.column_stack([np.zeros(len(pts)), np.zeros(len(pts)), z])
        return np.linalg.norm(pts - ax, axis=1) - 1.6

    sim = (Scenario.builder()
           .config(cfg)
           .vessel(container)
           .fill(sd, (np.array([-1.6, -1.6, -3.5]),
                      np.array([1.6, 1.6, 3.5])), spacing=1.3,
                 order=5, shape="sphere", seed=4)
           .build())
    print(f"{len(sim.cells)} cells at global volume fraction "
          f"{sim.volume_fraction() * 100:.1f}%")
    lower_half = container.volume() / 2.0

    def lower_fraction():
        return sum(c.volume() for c in sim.cells
                   if c.centroid()[2] < 0.0) / lower_half

    print(f"\n{'t':>5} {'mean z':>8} {'lower-half vf':>14} {'contacts':>9}")
    for _ in range(4):
        rep = sim.step()
        nc = rep.ncp.n_components if rep.ncp else 0
        print(f"{sim.t:>5.2f} {sim.centroids()[:, 2].mean():>8.3f} "
              f"{lower_fraction() * 100:>13.1f}% {nc:>9}")
    print("\ncells settle; the lower region's packing fraction rises "
          "(paper Fig. 7 behaviour).")


if __name__ == "__main__":
    main()

"""Two RBCs in shear flow with collision-free contact (paper Fig. 10).

Two biconcave cells are placed in the linear shear u = [z, 0, 0] (the
``ShearFlow`` force term of the ``presets.shear`` configuration); the
upper cell overtakes the lower one and the contact solver keeps the pair
interference-free as they squeeze past each other. Prints the centroid
traces and contact activity per step — the scenario behind the paper's
temporal convergence study (Fig. 11, see
benchmarks/bench_fig10_11_shear_collision.py).

Run:  python examples/shear_two_cells.py
"""
import numpy as np

from repro import Scenario, presets
from repro.surfaces import biconcave_rbc


def main() -> None:
    c1 = biconcave_rbc(radius=1.0, order=6, center=(-1.8, 0.0, 0.45))
    c2 = biconcave_rbc(radius=1.0, order=6, center=(1.8, 0.0, -0.45))

    sim = (Scenario.builder()
           .config(presets.shear(rate=1.0, dt=0.1, bending_modulus=0.02))
           .cells([c1, c2])
           .build())
    area0 = sim.total_cell_area()

    print(f"{'t':>5} {'x1':>8} {'z1':>7} {'x2':>8} {'z2':>7} "
          f"{'gap':>7} {'contact':>8}")
    for _ in range(10):
        rep = sim.step()
        c = sim.centroids()
        gap = np.linalg.norm(c[0] - c[1])
        contact = "yes" if (rep.ncp and rep.ncp.contact_active) else "-"
        print(f"{sim.t:>5.1f} {c[0][0]:>8.3f} {c[0][2]:>7.3f} "
              f"{c[1][0]:>8.3f} {c[1][2]:>7.3f} {gap:>7.3f} {contact:>8}")

    drift = abs(sim.total_cell_area() - area0) / area0
    print(f"\nrelative area drift over the run: {drift * 100:.2f}%")


if __name__ == "__main__":
    main()

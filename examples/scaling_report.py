"""Regenerate the paper's scaling tables (Figs. 4, 5, 6).

Calibrates per-unit costs from this host, measures partition imbalance
from real Morton decompositions, and prints the three tables in the
paper's format next to the published efficiency rows. See DESIGN.md
(substitutions S1/S2) for what is measured versus modeled.

Run:  python examples/scaling_report.py
"""
from repro.scaling import KNL, calibrate_costs, strong_scaling_table, weak_scaling_table
from repro.scaling.harness import format_table


def main() -> None:
    print("calibrating per-unit costs on this host ...")
    costs = calibrate_costs(quick=True)
    print(f"  fmm {costs.fmm_per_point:.2e} s/pt, "
          f"bie {costs.bie_per_node_iter:.2e} s/node/iter, "
          f"col {costs.col_detect_per_vertex:.2e} s/vertex")

    print("\n=== Fig. 4: strong scaling, 40,960 RBCs, SKX ===")
    print(format_table(strong_scaling_table(costs=costs)))
    print("paper efficiencies:        1.00  0.98  0.86  0.75  0.63  0.49")
    print("paper COL+BIE efficiencies:1.00  1.05  0.93  0.82  0.77  0.66")

    print("\n=== Fig. 5: weak scaling, 4096 RBC + 8192 patches/node, SKX ===")
    print(format_table(weak_scaling_table(costs=costs), weak=True))
    print("paper efficiencies:      -  1.00  0.88  0.81  0.71")

    print("\n=== Fig. 6: weak scaling, 512 RBC + 1024 patches/node, KNL ===")
    rows = weak_scaling_table(machine=KNL, rbc_per_node=512,
                              patches_per_node=1024,
                              node_counts=(2, 8, 32, 128, 512),
                              volume_fractions=(0.17, 0.19, 0.20, 0.23, 0.26),
                              collision_fractions=(0.10, 0.15, 0.13, 0.17, 0.15),
                              ref_index=0, costs=costs)
    print(format_table(rows, weak=True))
    print("paper efficiencies:   1.00  0.86  0.73  0.57  0.47")


if __name__ == "__main__":
    main()

"""RBCs flowing through a vessel (mini version of the paper's Fig. 1 runs).

Builds a smooth capsule vessel, prescribes parabolic inflow/outflow with
zero net flux, fills the lumen with RBCs using the paper's filling
algorithm (Sec. 5.1) — here through the scenario builder's ``fill()``
stage — and advances the fully coupled system: boundary integral solve
for the wall correction u_Gamma each step, explicit cell-cell
interactions through the cached-evaluator backend, implicit
self-interaction, and collision-free contact with the wall and between
cells.

Run:  python examples/vessel_flow.py
"""
import dataclasses

import numpy as np

from repro import Scenario, presets
from repro.config import NumericsOptions
from repro.patches import capsule_tube
from repro.vessel import capsule_inlet_outlet_bc


def main() -> None:
    opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                           check_r_factor=0.25, gmres_max_iter=20)
    vessel = capsule_tube(length=8.0, radius=1.6, refine=0, options=opts)
    g = capsule_inlet_outlet_bc(vessel, axis=2, flux=3.0)
    d = vessel.coarse()
    print("=== vessel ===")
    print(f"patches {vessel.n_patches}, boundary nodes {d.points.shape[0]}, "
          f"lumen volume {vessel.volume():.2f}")
    print(f"net boundary flux: "
          f"{np.einsum('n,nk,nk->', d.weights, g, d.normals):.2e}")

    def sd(pts):
        z = np.clip(pts[:, 2], -2.4, 2.4)
        ax = np.column_stack([np.zeros(len(pts)), np.zeros(len(pts)), z])
        return np.linalg.norm(pts - ax, axis=1) - 1.6

    cfg = dataclasses.replace(presets.vessel_flow(dt=0.05), numerics=opts)
    sim = (Scenario.builder()
           .config(cfg)
           .vessel(vessel, bc=g)
           .fill(sd, (np.array([-1.6, -1.6, -4.0]),
                      np.array([1.6, 1.6, 4.0])), spacing=1.5,
                 order=5, shape="sphere", seed=1)
           .build())
    print(f"\n=== filling (paper Sec. 5.1) ===")
    print(f"cells {len(sim.cells)}, volume fraction "
          f"{sim.volume_fraction() * 100:.1f}%")
    print(f"degrees of freedom per step: {sim.n_dof()}")

    print(f"\n{'t':>5} {'mean z':>8} {'BIE iters':>10} {'contacts':>9}")
    for _ in range(3):
        rep = sim.step()
        zbar = sim.centroids()[:, 2].mean()
        nc = rep.ncp.n_components if rep.ncp else 0
        print(f"{sim.t:>5.2f} {zbar:>8.3f} {rep.bie_iterations:>10} {nc:>9}")

    print("\ncomponent wall-time breakdown (paper Figs. 4-6 categories):")
    for k, v in sim.timers.breakdown().items():
        print(f"  {k:<10} {v:7.2f} s")


if __name__ == "__main__":
    main()

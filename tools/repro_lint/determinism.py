"""Determinism / aliasing pass (rule ``shared-write``).

The executor contract (``repro.runtime.executor``) promises that a
threaded ``executor.map(task, items)`` is bit-identical to the serial
loop. That holds only when each task writes state *owned by its mapped
item* — anything else (an attribute on the shared stepper, a subscript
with a loop-invariant index, a closure accumulator) races under the
thread pool and silently diverges.

This pass finds every ``<...>executor.map(task, ...)`` call, resolves
``task`` to its definition (a ``self.<method>``, a function local to the
enclosing scope, a module function, or an inline lambda), and walks the
body plus every same-module callee reachable from it (taint following
argument positions, depth-limited, cycle-safe), flagging:

- attribute writes whose target is not derived from the mapped item,
- subscript writes whose index does not involve the mapped item and
  whose base is not derived from it,
- writes to declared ``nonlocal``/``global`` names,
- calls of known container mutators (``append``, ``update``, ...) on
  receivers not derived from the mapped item.

Two sanctioned patterns are recognized and allowed:

- writes inside a ``with <expr>:`` block whose context expression ends
  in an identifier containing ``lock`` (the lazy shared-table builds of
  ``self_interaction.py`` take ``_fused_lock``/``_circ_lock``), and
- writes through thread-local storage, i.e. an access chain with a
  component containing ``local`` (the ``ComponentTimers`` pattern).

Calls that cannot be resolved within the module are assumed pure —
cross-module effects are covered by the runtime ``checked`` executor.
"""
from __future__ import annotations

import ast
from typing import Optional

from .base import (ModuleIndex, Violation, chain_parts, names_in,
                   terminal_identifier)

_MAX_DEPTH = 4

#: method names that mutate their receiver in place.
_MUTATORS = {"append", "extend", "insert", "add", "update", "setdefault",
             "pop", "popitem", "remove", "discard", "clear", "sort",
             "reverse", "setflags", "fill", "resize"}


def _is_lockish(expr: ast.AST) -> bool:
    t = terminal_identifier(expr)
    return t is not None and "lock" in t.lower()


def _is_thread_local(expr: ast.AST) -> bool:
    return any("local" in part.lower() for part in chain_parts(expr)[1:])


class _TaskChecker:
    """Walks one task body, tracking tainted names and lock scope."""

    def __init__(self, path: str, index: ModuleIndex,
                 out: list[Violation], site_line: int):
        self.path = path
        self.index = index
        self.out = out
        self.site_line = site_line
        self._visited: set[int] = set()

    # -- entry points --------------------------------------------------------
    def check_function(self, fn: ast.FunctionDef, tainted: set[str],
                       class_name: Optional[str], depth: int = 0) -> None:
        if id(fn) in self._visited or depth > _MAX_DEPTH:
            return
        self._visited.add(id(fn))
        declared = {n for node in ast.walk(fn)
                    if isinstance(node, (ast.Nonlocal, ast.Global))
                    for n in node.names}
        self._walk(fn.body, set(tainted), declared, class_name,
                   depth, in_lock=False)

    def check_lambda(self, lam: ast.Lambda, class_name: Optional[str]) -> None:
        tainted = {lam.args.args[0].arg} if lam.args.args else set()
        self._resolve_calls(lam.body, tainted, set(), class_name,
                            depth=0, in_lock=False)

    # -- statement walk ------------------------------------------------------
    def _walk(self, body: list[ast.stmt], tainted: set[str],
              declared: set[str], class_name: Optional[str],
              depth: int, in_lock: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue          # nested defs are checked when called
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                for t in targets:
                    self._check_target(t, value, tainted, declared,
                                       in_lock)
                if value is not None:
                    self._resolve_calls(value, tainted, declared,
                                        class_name, depth, in_lock)
                continue
            if isinstance(stmt, ast.With):
                locked = in_lock or any(_is_lockish(item.context_expr)
                                        for item in stmt.items)
                for item in stmt.items:
                    self._resolve_calls(item.context_expr, tainted,
                                        declared, class_name, depth,
                                        in_lock)
                self._walk(stmt.body, tainted, declared, class_name,
                           depth, locked)
                continue
            if isinstance(stmt, ast.For):
                if self._tainted_expr(stmt.iter, tainted):
                    tainted |= names_in(stmt.target)
                self._resolve_calls(stmt.iter, tainted, declared,
                                    class_name, depth, in_lock)
                self._walk(stmt.body, tainted, declared, class_name,
                           depth, in_lock)
                self._walk(stmt.orelse, tainted, declared, class_name,
                           depth, in_lock)
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                self._resolve_calls(stmt.test, tainted, declared,
                                    class_name, depth, in_lock)
                self._walk(stmt.body, tainted, declared, class_name,
                           depth, in_lock)
                self._walk(stmt.orelse, tainted, declared, class_name,
                           depth, in_lock)
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, tainted, declared, class_name,
                           depth, in_lock)
                for h in stmt.handlers:
                    self._walk(h.body, tainted, declared, class_name,
                               depth, in_lock)
                self._walk(stmt.orelse, tainted, declared, class_name,
                           depth, in_lock)
                self._walk(stmt.finalbody, tainted, declared, class_name,
                           depth, in_lock)
                continue
            if isinstance(stmt, (ast.Expr, ast.Return)):
                if stmt.value is not None:
                    self._resolve_calls(stmt.value, tainted, declared,
                                        class_name, depth, in_lock)
                continue
            # remaining statements (raise, pass, assert, del, ...) carry
            # expressions but no writes we track
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._resolve_calls(child, tainted, declared,
                                        class_name, depth, in_lock)

    # -- write targets -------------------------------------------------------
    def _check_target(self, target: ast.AST, value: Optional[ast.AST],
                      tainted: set[str], declared: set[str],
                      in_lock: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._check_target(el, value, tainted, declared, in_lock)
            return
        if isinstance(target, ast.Starred):
            self._check_target(target.value, value, tainted, declared,
                               in_lock)
            return
        if isinstance(target, ast.Name):
            if target.id in declared and not in_lock:
                self._flag(target, f"write to nonlocal/global "
                                   f"{target.id!r} from a mapped task")
            elif value is not None and self._tainted_expr(value, tainted):
                tainted.add(target.id)
            return
        if isinstance(target, ast.Subscript):
            if self._tainted_expr(target.slice, tainted):
                return            # indexed by the mapped item: owned state
            if self._derived_from_item(target.value, tainted):
                return
            if in_lock or _is_thread_local(target.value):
                return
            self._flag(target, "subscript write not indexed by the mapped "
                               "item (shared across tasks)")
            return
        if isinstance(target, ast.Attribute):
            if self._derived_from_item(target.value, tainted):
                return
            if in_lock or _is_thread_local(target.value):
                return
            self._flag(target, f"attribute write to shared state "
                               f"'.{target.attr}' from a mapped task")

    # -- calls ---------------------------------------------------------------
    def _resolve_calls(self, expr: ast.AST, tainted: set[str],
                       declared: set[str], class_name: Optional[str],
                       depth: int, in_lock: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                continue          # deferred, not executed by this task
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Attribute):
                recv = fn.value
                if (isinstance(recv, ast.Name) and recv.id == "self"):
                    callees = self.index.resolve_methods(class_name,
                                                         fn.attr)
                    if callees:
                        for callee in callees:
                            self._descend(callee, node, tainted,
                                          class_name, depth)
                        continue
                if fn.attr in _MUTATORS:
                    if not (self._derived_from_item(recv, tainted)
                            or in_lock or _is_thread_local(recv)
                            or isinstance(recv, ast.Name)):
                        self._flag(node,
                                   f"mutating call '.{fn.attr}()' on a "
                                   "receiver shared across tasks")
            elif isinstance(fn, ast.Name):
                callee = self.index.functions.get(fn.id)
                if callee is not None:
                    self._descend(callee, node, tainted, None, depth)

    def _descend(self, callee: ast.FunctionDef, call: ast.Call,
                 tainted: set[str], class_name: Optional[str],
                 depth: int) -> None:
        params = [a.arg for a in callee.args.args]
        if params and params[0] == "self":
            params = params[1:]
        callee_taint: set[str] = set()
        for pos, arg in enumerate(call.args):
            if pos < len(params) and self._tainted_expr(arg, tainted):
                callee_taint.add(params[pos])
        for kw in call.keywords:
            if kw.arg in params and self._tainted_expr(kw.value, tainted):
                callee_taint.add(kw.arg)
        self.check_function(callee, callee_taint, class_name,
                            depth=depth + 1)

    # -- taint helpers -------------------------------------------------------
    def _tainted_expr(self, expr: ast.AST, tainted: set[str]) -> bool:
        return bool(names_in(expr) & tainted)

    def _derived_from_item(self, expr: ast.AST, tainted: set[str]) -> bool:
        """Whether an access chain goes through the mapped item: a tainted
        name, or a subscript indexed by one (``cells[i].foo``)."""
        node = expr
        while True:
            if isinstance(node, ast.Name):
                return node.id in tainted
            if isinstance(node, ast.Attribute):
                node = node.value
            elif isinstance(node, ast.Subscript):
                if self._tainted_expr(node.slice, tainted):
                    return True
                node = node.value
            elif isinstance(node, ast.Call):
                node = node.func
            else:
                return False

    def _flag(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.site_line)
        self.out.append(Violation(
            self.path, line, "shared-write",
            f"{message} (task mapped at line {self.site_line}; writes "
            "must be owned by the mapped item, held under a lock, or "
            "thread-local)"))


def _local_function(scope: ast.FunctionDef, name: str
                    ) -> Optional[ast.FunctionDef]:
    for node in ast.walk(scope):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def check_determinism(path: str, tree: ast.Module,
                      source: str) -> list[Violation]:
    index = ModuleIndex(tree)
    out: list[Violation] = []

    # Enumerate map sites with their enclosing function/class context.
    def visit(node: ast.AST, func: Optional[ast.FunctionDef],
              cls: Optional[str]) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                visit(child, func, node.name)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                visit(child, node, cls)
            return
        if isinstance(node, ast.Call):
            fn = node.func
            if (isinstance(fn, ast.Attribute) and fn.attr == "map"
                    and (terminal_identifier(fn.value) or ""
                         ).endswith("executor") and node.args):
                _check_site(path, index, out, node, func, cls)
        for child in ast.iter_child_nodes(node):
            visit(child, func, cls)

    for top in tree.body:
        visit(top, None, None)
    return out


def _check_site(path: str, index: ModuleIndex, out: list[Violation],
                call: ast.Call, func: Optional[ast.FunctionDef],
                cls: Optional[str]) -> None:
    task = call.args[0]
    checker = _TaskChecker(path, index, out, call.lineno)
    if isinstance(task, ast.Lambda):
        checker.check_lambda(task, cls)
        return
    if isinstance(task, ast.Attribute) and \
            isinstance(task.value, ast.Name) and task.value.id == "self":
        for fn in index.resolve_methods(cls, task.attr):
            params = [a.arg for a in fn.args.args if a.arg != "self"]
            checker.check_function(fn, set(params[:1]), cls)
        return
    if isinstance(task, ast.Name):
        fn = None
        if func is not None:
            fn = _local_function(func, task.id)
        if fn is None:
            fn = index.functions.get(task.id)
        if fn is not None:
            params = [a.arg for a in fn.args.args if a.arg != "self"]
            checker.check_function(fn, set(params[:1]), cls)

"""``# repro-lint: disable=<rule> — <reason>`` comment handling.

A suppression comment covers the findings of its own line; a standalone
comment line covers the next non-blank line. The reason is mandatory —
a suppression without one does not apply and is itself reported as
``bad-suppression``.
"""
from __future__ import annotations

import re

from .base import Violation

#: rule list, then a separator (em dash, ``--`` or ``:``) and the reason.
_SUPP_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]*?)"
    r"\s*(?:—|–|--|:)\s*(.*)$")
#: any repro-lint marker at all, for catching malformed ones.
_MARKER_RE = re.compile(r"#\s*repro-lint:")


class Suppressions:
    def __init__(self, path: str, source: str):
        self.violations: list[Violation] = []
        #: line number -> set of suppressed rule ids
        self._by_line: dict[int, set[str]] = {}
        lines = source.splitlines()
        for i, text in enumerate(lines, start=1):
            if not _MARKER_RE.search(text):
                continue
            m = _SUPP_RE.search(text)
            rules = ({r.strip() for r in m.group(1).split(",") if r.strip()}
                     if m else set())
            reason = m.group(2).strip() if m else ""
            if not rules or not reason:
                self.violations.append(Violation(
                    path, i, "bad-suppression",
                    "suppression needs 'disable=<rule> — <reason>' with a "
                    "non-empty rule list and reason"))
                continue
            target = i
            if text.lstrip().startswith("#"):
                # Standalone comment: covers the next non-blank line.
                j = i
                while j < len(lines) and not lines[j].strip():
                    j += 1
                target = j + 1 if j < len(lines) else i
            self._by_line.setdefault(target, set()).update(rules)

    def covers(self, v: Violation) -> bool:
        return v.rule in self._by_line.get(v.line, ())

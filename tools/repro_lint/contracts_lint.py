"""Array-contract cross-check pass (rule ``contract-dtype``).

``@checked(...)`` declarations are verified dynamically only when debug
checks are on; this pass catches the cheap static half at lint time: a
function whose contract declares a return dtype must not build the
returned array with a conflicting *literal* dtype (``np.empty(...,
dtype=np.float32)`` under an ``out="... f8"`` contract). Dtypes that
flow through variables are ignored — that is the sanctioned
``farfield_dtype`` pattern, checked at runtime instead.
"""
from __future__ import annotations

import ast
import re
from typing import Optional

from .base import Violation

#: literal dtype expression -> numpy char code, as used in contract specs.
_DTYPE_CODES = {
    "float32": "f4", "float64": "f8", "float": "f8",
    "complex64": "c8", "complex128": "c16", "complex": "c16",
    "int32": "i4", "int64": "i8", "int": "i8",
    "bool": "b1", "bool_": "b1",
    "f4": "f4", "f8": "f8", "c8": "c8", "c16": "c16",
    "i4": "i4", "i8": "i8",
}

_SPEC_DTYPE_RE = re.compile(r"^(?:\([^)]*\))?\s*(\S+)?\s*$")


def _spec_dtype(spec: str) -> Optional[str]:
    m = _SPEC_DTYPE_RE.match(spec.strip())
    if not m or not m.group(1):
        return None
    return _DTYPE_CODES.get(m.group(1))


def _literal_dtype(node: ast.AST) -> Optional[str]:
    """Code of a literal dtype expression; None when it is not literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_CODES.get(node.value)
    if isinstance(node, ast.Attribute):
        return _DTYPE_CODES.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_CODES.get(node.id)
    return None


def _checked_specs(fn: ast.FunctionDef) -> Optional[dict[str, str]]:
    for dec in fn.decorator_list:
        if isinstance(dec, ast.Call):
            target = dec.func
            name = (target.attr if isinstance(target, ast.Attribute)
                    else getattr(target, "id", None))
            if name == "checked":
                return {kw.arg: kw.value.value for kw in dec.keywords
                        if kw.arg is not None
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)}
    return None


def check_contracts(path: str, tree: ast.Module,
                    source: str) -> list[Violation]:
    out: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        specs = _checked_specs(node)
        if not specs:
            continue
        out_dtype = _spec_dtype(specs.get("out", ""))
        if out_dtype is None:
            continue
        # Names the function returns, and the literal dtypes they were
        # constructed or cast with.
        returned: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and \
                    isinstance(sub.value, ast.Name):
                returned.add(sub.value.id)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            names = {t.id for t in sub.targets if isinstance(t, ast.Name)}
            if not (names & returned):
                continue
            built = _construction_dtype(sub.value)
            if built is not None and built != out_dtype:
                out.append(Violation(
                    path, sub.lineno, "contract-dtype",
                    f"'{node.name}' declares out dtype {out_dtype!r} but "
                    f"builds the returned array with literal dtype "
                    f"{built!r}"))
    return out


def _construction_dtype(value: ast.AST) -> Optional[str]:
    """Literal dtype a construction/cast pins the result to, if any."""
    if not isinstance(value, ast.Call):
        return None
    fn = value.func
    if isinstance(fn, ast.Attribute) and fn.attr == "astype" and value.args:
        return _literal_dtype(value.args[0])
    for kw in value.keywords:
        if kw.arg == "dtype":
            return _literal_dtype(kw.value)
    return None

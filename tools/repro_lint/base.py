"""Shared plumbing of the lint passes: findings, file walking, AST helpers."""
from __future__ import annotations

import ast
import dataclasses
import os
from typing import Iterator, Optional


@dataclasses.dataclass(frozen=True)
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def collect_files(paths: list[str]) -> Iterator[str]:
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(".py"):
                yield p
        else:
            for root, _dirs, files in os.walk(p):
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)


def parse_file(path: str, source: str) -> Optional[ast.Module]:
    try:
        return ast.parse(source, filename=path)
    except SyntaxError:
        return None


def terminal_identifier(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute/Call/Subscript chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_identifier(node.func)
    if isinstance(node, ast.Subscript):
        return terminal_identifier(node.value)
    return None


def chain_parts(node: ast.AST) -> list[str]:
    """Dotted-access components of an expression, left to right
    (``self._local.stack`` -> ``["self", "_local", "stack"]``); calls and
    subscripts are looked through."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, (ast.Call,)):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    return parts[::-1]


def names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class ModuleIndex:
    """Name -> definition lookup for one module's top level."""

    def __init__(self, tree: ast.Module):
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self.methods: dict[tuple[str, str], ast.FunctionDef] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self.methods[(node.name, item.name)] = item

    def resolve_methods(self, class_name: Optional[str],
                        meth: str) -> list[ast.FunctionDef]:
        """``self.<meth>`` resolution: the enclosing class's definition
        plus every same-module override (base <-> subclass dispatch stays
        within one module in this codebase, and the static pass cannot
        know the dynamic type — so all candidates are checked)."""
        out: list[ast.FunctionDef] = []
        primary = (self.methods.get((class_name, meth))
                   if class_name is not None else None)
        if primary is not None:
            out.append(primary)
        for (_cls, name), fn in self.methods.items():
            if name == meth and fn is not primary:
                out.append(fn)
        return out

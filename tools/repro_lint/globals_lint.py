"""Module-level mutable state pass.

Rule ``global-mutable`` — a module-level name bound to a mutable
container (a ``list``/``dict``/``set`` literal or comprehension, or a
call to one of the mutable stdlib container constructors) is
process-global state shared by *every simulation in the process*. The
``warn_once`` registry bug this repo shipped is the canonical failure:
one simulation's warning silently suppressed every other simulation's,
and nothing crashed. Under the many-scene sweep workload (N independent
scenes per process, threads or forked workers) such state is either a
correctness bug waiting to fire or a deliberate, documented registry.

The pass forces the distinction to be explicit: hoist the state into an
instance (per-``Simulation``/per-``Stepper``), freeze it into an
immutable table (tuple/frozenset/``freeze``), or keep it global with a
suppression naming why that is sound::

    EXECUTORS: dict = {}  # repro-lint: disable=global-mutable — <why>

``__all__`` and other dunder conventions are exempt, as are
``TYPE_CHECKING``-style annotation-only statements.
"""
from __future__ import annotations

import ast

from .base import Violation, terminal_identifier

#: constructors whose module-level call is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict", "ChainMap",
}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


def _is_mutable_value(node: ast.AST) -> str | None:
    """Kind string when ``node`` builds a mutable container, else None."""
    if isinstance(node, _MUTABLE_LITERALS):
        return {ast.List: "list", ast.Dict: "dict", ast.Set: "set",
                ast.ListComp: "list", ast.DictComp: "dict",
                ast.SetComp: "set"}[type(node)]
    if isinstance(node, ast.Call):
        tid = terminal_identifier(node.func)
        if tid in _MUTABLE_CONSTRUCTORS:
            return tid
    return None


def _target_names(node: ast.stmt) -> list[tuple[str, ast.AST]]:
    """(name, value) pairs bound by a top-level assignment statement."""
    if isinstance(node, ast.Assign):
        out = []
        for t in node.targets:
            if isinstance(t, ast.Name):
                out.append((t.id, node.value))
            elif isinstance(t, ast.Tuple):
                # a, b = [], {}  — pair element-wise when shapes match
                if isinstance(node.value, ast.Tuple) and \
                        len(node.value.elts) == len(t.elts):
                    out.extend((e.id, v) for e, v in
                               zip(t.elts, node.value.elts)
                               if isinstance(e, ast.Name))
                else:
                    out.extend((e.id, node.value) for e in t.elts
                               if isinstance(e, ast.Name))
        return out
    if isinstance(node, ast.AnnAssign) and node.value is not None and \
            isinstance(node.target, ast.Name):
        return [(node.target.id, node.value)]
    return []


def check_globals(path: str, tree: ast.Module,
                  source: str) -> list[Violation]:
    out: list[Violation] = []
    for stmt in tree.body:
        for name, value in _target_names(stmt):
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends: module conventions
            kind = _is_mutable_value(value)
            if kind is None:
                continue
            out.append(Violation(
                path, value.lineno, "global-mutable",
                f"module-level mutable {kind} '{name}' is shared by "
                "every simulation in the process (the warn_once-registry "
                "bug class); make it per-instance state, freeze it into "
                "an immutable table, or suppress with a reason why a "
                "process-global registry is sound here"))
    return out

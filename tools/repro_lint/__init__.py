"""Static analysis for the repro determinism contract.

``python -m repro_lint src/`` runs three passes over the library:

1. **Determinism / aliasing** (:mod:`.determinism`) — walks every
   ``executor.map(task, items)`` call site, resolves the task callable
   (bound method, local ``def``, or lambda) and verifies its body — and
   every same-module callee reachable from it — only writes state
   indexed by the mapped item. Writes under a ``with <...lock>:`` block
   and through thread-local storage are the two sanctioned exceptions.
2. **Frozen tables & library hygiene** (:mod:`.hygiene`) —
   ``lru_cache``'d numpy-table factories must return read-only arrays
   (``freeze``/``freeze_attributes``); plus no ``assert`` statements in
   library code, no bare ``except:``, no mutable default arguments, and
   no unsanctioned literal float32 casts.
3. **Array contracts** (:mod:`.contracts_lint`) — cross-checks the
   dtypes declared in ``@checked(...)`` decorations against literal
   ``astype``/constructor dtypes in the function body.
4. **Process picklability** (:mod:`.picklable`) — ``ProcessTask``
   subclasses must be module-level with picklable instance state, and
   callables mapped on the process executor must not be lambdas or
   local closures (workers unpickle tasks by module path).
5. **Module-level mutable state** (:mod:`.globals_lint`) — a
   module-level mutable container is process-global state shared by
   every simulation in the process (the ``warn_once``-registry bug
   class); it must become per-instance state, an immutable table, or a
   suppressed, documented registry.

Suppress a finding with a trailing (or directly preceding) comment::

    x = build()  # repro-lint: disable=<rule> — <reason>

The reason is mandatory; a suppression without one is itself reported
(rule ``bad-suppression``). The package is stdlib-only.
"""
from __future__ import annotations

from .base import Violation, collect_files, parse_file
from .suppressions import Suppressions
from .determinism import check_determinism
from .hygiene import check_hygiene
from .contracts_lint import check_contracts
from .globals_lint import check_globals
from .picklable import check_picklable

#: every rule id a suppression comment may name.
ALL_RULES = (
    "shared-write",
    "frozen-table",
    "no-assert",
    "bare-except",
    "mutable-default",
    "float32-cast",
    "sentinel-suppress",
    "contract-dtype",
    "picklable-task",
    "global-mutable",
    "bad-suppression",
)

_PASSES = (check_determinism, check_hygiene, check_contracts,
           check_picklable, check_globals)


def lint_source(path: str, source: str) -> list[Violation]:
    """Run every pass over one file's source text."""
    tree = parse_file(path, source)
    if tree is None:
        return [Violation(path, 1, "bad-suppression",
                          "file does not parse; skipped")]
    supp = Suppressions(path, source)
    out: list[Violation] = []
    for check in _PASSES:
        out.extend(check(path, tree, source))
    out = [v for v in out if not supp.covers(v)]
    out.extend(supp.violations)
    return out


def lint_paths(paths: list[str]) -> list[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    out: list[Violation] = []
    for path in collect_files(paths):
        with open(path, encoding="utf-8") as fh:
            out.extend(lint_source(path, fh.read()))
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out

"""Frozen-table and library-hygiene pass.

Rules:

- ``frozen-table`` — an ``lru_cache``'d factory building numpy arrays
  must return them read-only: either directly through
  ``freeze(...)``, or as an instance of a same-module class whose
  ``__init__`` calls ``freeze``/``freeze_attributes``. Cached tables
  are shared by every caller; one in-place mutation corrupts all of
  them silently.
- ``no-assert`` — ``assert`` statements vanish under ``python -O``;
  library invariants must raise real exceptions.
- ``bare-except`` — ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit`` along with the intended error.
- ``mutable-default`` — a mutable default argument is shared across
  calls.
- ``float32-cast`` — literal single-precision casts
  (``.astype(np.float32)``, ``dtype="float32"``) bypass the sanctioned
  ``farfield_dtype`` configuration path, where the working dtype is a
  parameter and float64 remains the default.
- ``sentinel-suppress`` — health-sentinel machinery
  (``HealthSentinel.evaluate``, ``warn_once``, ``capture_state`` /
  ``restore_state``, ``StepRejectedError``) may not sit under a bare
  ``except:`` or a blanket ``except (Base)Exception`` handler: the whole
  point of the sentinel is that a failed check *propagates* as a
  structured rejection; a catch-all around it silently converts "step
  rejected, rolled back" into "nothing happened". Catch
  ``StepRejectedError`` by name instead (and do something with it —
  swallowing it with a bare ``pass`` is also flagged).
"""
from __future__ import annotations

import ast
from typing import Optional

from .base import ModuleIndex, Violation, terminal_identifier

_NP_CONSTRUCTORS = {
    "array", "asarray", "asanyarray", "ascontiguousarray", "empty",
    "zeros", "ones", "full", "arange", "linspace", "eye", "outer",
    "stack", "vstack", "hstack", "concatenate", "meshgrid", "tile",
    "unique", "round",
}

_FREEZERS = {"freeze", "freeze_attributes"}

#: call/name tokens that mark a statement as sentinel machinery for the
#: ``sentinel-suppress`` rule.
_SENTINEL_TOKENS = {"warn_once", "capture_state", "restore_state",
                    "HealthSentinel", "StepRejectedError"}

#: blanket exception classes a sentinel call may not sit under.
_BLANKET_HANDLERS = {"Exception", "BaseException"}


def _touches_sentinel(nodes) -> Optional[int]:
    """Line of the first sentinel-machinery reference under ``nodes``,
    or None. Matches calls to the sentinel helpers, ``.evaluate`` on a
    receiver whose name mentions 'sentinel', and any use of
    ``StepRejectedError``/``HealthSentinel``."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id in _SENTINEL_TOKENS:
                return node.lineno
            if isinstance(node, ast.Attribute):
                if node.attr in _SENTINEL_TOKENS:
                    return node.lineno
                if node.attr == "evaluate" and \
                        "sentinel" in (terminal_identifier(node.value)
                                       or "").lower():
                    return node.lineno
    return None


def _only_passes(body) -> bool:
    return all(isinstance(s, ast.Pass)
               or (isinstance(s, ast.Expr)
                   and isinstance(s.value, ast.Constant)
                   and s.value.value is Ellipsis) for s in body)


def _check_sentinel_suppress(path: str, node: ast.Try,
                             out: list[Violation]) -> None:
    line = _touches_sentinel(node.body)
    if line is None:
        return
    for handler in node.handlers:
        names = []
        if handler.type is not None:
            types = (handler.type.elts
                     if isinstance(handler.type, ast.Tuple)
                     else [handler.type])
            names = [terminal_identifier(t) for t in types]
        if handler.type is None or \
                any(n in _BLANKET_HANDLERS for n in names):
            out.append(Violation(
                path, handler.lineno, "sentinel-suppress",
                "catch-all handler around health-sentinel machinery "
                "(line %d) silently suppresses step rejection; catch "
                "StepRejectedError by name" % line))
        elif "StepRejectedError" in names and _only_passes(handler.body):
            out.append(Violation(
                path, handler.lineno, "sentinel-suppress",
                "StepRejectedError swallowed with 'pass'; a rejected "
                "step must be surfaced (log, re-raise, or recover "
                "explicitly)"))


def _is_float32_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value == "float32":
        return True
    return (isinstance(node, ast.Attribute) and node.attr == "float32")


def _is_np_call(node: ast.AST) -> bool:
    """A call that plausibly constructs a numpy array (``np.*`` chains)."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    parts = []
    while isinstance(fn, ast.Attribute):
        parts.append(fn.attr)
        fn = fn.value
    if isinstance(fn, ast.Name):
        parts.append(fn.id)
    parts = parts[::-1]
    return bool(parts) and parts[0] in ("np", "numpy") and \
        (parts[-1] in _NP_CONSTRUCTORS or len(parts) > 2)


def _is_lru_decorated(fn: ast.FunctionDef) -> bool:
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if terminal_identifier(target) in ("lru_cache", "cache"):
            return True
    return False


def _class_freezes(cls: ast.ClassDef) -> Optional[bool]:
    """True/False whether ``__init__`` freezes; None when it builds no
    arrays (nothing to freeze)."""
    init = next((n for n in cls.body
                 if isinstance(n, ast.FunctionDef) and n.name == "__init__"),
                None)
    if init is None:
        return None
    builds = any(_is_np_call(n) for n in ast.walk(init))
    if not builds:
        return None
    for node in ast.walk(init):
        if isinstance(node, ast.Call) and \
                terminal_identifier(node.func) in _FREEZERS:
            return True
    return False


def _check_frozen_factory(path: str, fn: ast.FunctionDef,
                          index: ModuleIndex,
                          out: list[Violation]) -> None:
    # Names assigned from freeze(...) are safe; names assigned from
    # numpy constructions (and never re-frozen) are not.
    frozen: set[str] = set()
    unfrozen: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            is_freeze = (isinstance(node.value, ast.Call) and
                         terminal_identifier(node.value.func) in _FREEZERS)
            is_np = _is_np_call(node.value) or (
                isinstance(node.value, ast.Tuple)
                and any(_is_np_call(e) for e in node.value.elts))
            for t in node.targets:
                for name in ([t.id] if isinstance(t, ast.Name) else
                             [e.id for e in getattr(t, "elts", [])
                              if isinstance(e, ast.Name)]):
                    if is_freeze:
                        frozen.add(name)
                        unfrozen.discard(name)
                    elif is_np:
                        unfrozen.add(name)
                        frozen.discard(name)

    def returned_unfrozen(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            tid = terminal_identifier(expr.func)
            if tid in _FREEZERS:
                return False
            if _is_np_call(expr):
                return True
            if tid in index.classes:
                return _class_freezes(index.classes[tid]) is False
            return False
        if isinstance(expr, ast.Name):
            return expr.id in unfrozen
        if isinstance(expr, ast.Tuple):
            return any(returned_unfrozen(e) for e in expr.elts)
        return False

    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if returned_unfrozen(node.value):
                out.append(Violation(
                    path, node.lineno, "frozen-table",
                    f"lru_cache'd factory '{fn.name}' returns a writable "
                    "array; wrap the tables in repro.analysis.freeze() "
                    "(or freeze_attributes in the returned class) so "
                    "shared cache entries cannot be mutated in place"))


def check_hygiene(path: str, tree: ast.Module,
                  source: str) -> list[Violation]:
    index = ModuleIndex(tree)
    out: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            out.append(Violation(
                path, node.lineno, "no-assert",
                "assert disappears under 'python -O'; raise a real "
                "exception (ValueError/RuntimeError) instead"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            out.append(Violation(
                path, node.lineno, "bare-except",
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "name the exception types"))
        elif isinstance(node, ast.Try):
            _check_sentinel_suppress(path, node, out)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in (node.args.defaults + node.args.kw_defaults):
                if default is None:
                    continue
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if isinstance(default, ast.Call) and \
                        isinstance(default.func, ast.Name) and \
                        default.func.id in ("list", "dict", "set"):
                    mutable = True
                if mutable:
                    out.append(Violation(
                        path, default.lineno, "mutable-default",
                        f"mutable default argument in '{node.name}' is "
                        "shared across calls; default to None and build "
                        "inside"))
            if _is_lru_decorated(node):
                _check_frozen_factory(path, node, index, out)
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr == "astype":
                if any(_is_float32_literal(a) for a in node.args):
                    out.append(Violation(
                        path, node.lineno, "float32-cast",
                        "literal .astype(float32) bypasses the "
                        "farfield_dtype configuration; thread the working "
                        "dtype through as a parameter"))
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_float32_literal(kw.value):
                    out.append(Violation(
                        path, node.lineno, "float32-cast",
                        "literal dtype=float32 bypasses the farfield_dtype "
                        "configuration; thread the working dtype through "
                        "as a parameter"))
    return out

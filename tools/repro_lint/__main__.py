"""CLI: ``python -m repro_lint src/ [more paths]`` — exit 0 when clean."""
from __future__ import annotations

import argparse
import sys

from . import ALL_RULES, lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="Determinism, frozen-table and contract linter for "
                    "the repro library.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0
    violations = lint_paths(args.paths or ["src"])
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

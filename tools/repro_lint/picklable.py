"""Process-executor picklability pass (rule ``picklable-task``).

The ``"process"`` executor (``repro.runtime.executor``) ships a mapped
callable to worker processes by pickling it, and pickle resolves
functions and classes *by module path*. A lambda, a ``def`` nested in a
function, or a per-instance callable attribute has no module path —
dispatch would fail at runtime, or worse, a fork-inherited closure would
silently read stale parent state. This pass enforces the static half of
the :class:`~repro.runtime.executor.ProcessTask` contract:

- every ``ProcessTask`` subclass must be defined at module top level
  (transitive subclasses within the module are tracked);
- no method of a ``ProcessTask`` subclass may assign a lambda or a
  locally-defined function to an attribute of ``self`` (unpicklable
  instance state);
- a ``map`` call on a receiver whose name marks it as the process
  executor (terminal identifier containing ``process``) must not pass a
  lambda or a function defined locally in the enclosing scope.

Generic ``self.executor.map(...)`` sites are *not* flagged: the process
executor runs non-``ProcessTask`` callables inline in the parent by
design, so closures are legal there. As everywhere, a finding can be
suppressed with ``# repro-lint: disable=picklable-task — <reason>``.
"""
from __future__ import annotations

import ast
from typing import Optional

from .base import Violation, terminal_identifier

_RULE = "picklable-task"


def _base_names(cls: ast.ClassDef) -> set[str]:
    out = set()
    for base in cls.bases:
        name = terminal_identifier(base)
        if name is not None:
            out.add(name)
    return out


def _process_task_classes(tree: ast.Module) -> set[str]:
    """Names of ProcessTask subclasses anywhere in the module, following
    same-module inheritance chains to a fixed point."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    tasky = {"ProcessTask"}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name not in tasky and _base_names(cls) & tasky:
                tasky.add(cls.name)
                changed = True
    return tasky - {"ProcessTask"}


def _is_unpicklable_value(node: ast.AST, local_defs: set[str]) -> Optional[str]:
    """Why a value expression cannot cross the process boundary, or None."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Name) and node.id in local_defs:
        return f"the locally-defined function {node.id!r}"
    return None


def check_picklable(path: str, tree: ast.Module,
                    source: str) -> list[Violation]:
    out: list[Violation] = []
    task_classes = _process_task_classes(tree)
    top_level = {n.name for n in tree.body if isinstance(n, ast.ClassDef)}

    # 1) ProcessTask subclasses must live at module top level.
    for node in ast.walk(tree):
        if (isinstance(node, ast.ClassDef) and node.name in task_classes
                and node.name not in top_level):
            out.append(Violation(
                path, node.lineno, _RULE,
                f"ProcessTask subclass {node.name!r} is not defined at "
                "module top level; workers unpickle tasks by module path, "
                "so nested task classes fail to dispatch"))

    # 2) No unpicklable instance state inside ProcessTask subclasses.
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name in task_classes):
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            if stmt.value is None or not isinstance(stmt.value, ast.Lambda):
                continue
            for t in targets:
                if (isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"):
                    out.append(Violation(
                        path, stmt.lineno, _RULE,
                        f"ProcessTask subclass {node.name!r} stores a "
                        f"lambda on 'self.{t.attr}'; instance state must "
                        "be picklable to cross the process boundary"))

    # 3) Explicit process-executor map sites must pass picklable tasks.
    def visit(node: ast.AST, func: Optional[ast.FunctionDef]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                visit(child, node)
            return
        if isinstance(node, ast.Call):
            fn = node.func
            receiver = (terminal_identifier(fn.value) or ""
                        if isinstance(fn, ast.Attribute) else "")
            if (isinstance(fn, ast.Attribute) and fn.attr == "map"
                    and "process" in receiver.lower() and node.args):
                local_defs = set()
                if func is not None:
                    local_defs = {
                        n.name for n in ast.walk(func)
                        if isinstance(n, ast.FunctionDef) and n is not func}
                why = _is_unpicklable_value(node.args[0], local_defs)
                if why is not None:
                    out.append(Violation(
                        path, node.lineno, _RULE,
                        f"mapping {why} on the process executor; workers "
                        "unpickle the callable by module path — map a "
                        "module-level ProcessTask instead"))
        for child in ast.iter_child_nodes(node):
            visit(child, func)

    for top in tree.body:
        visit(top, None)
    return out

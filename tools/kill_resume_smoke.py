"""Kill/resume checkpoint smoke: hard-kill a run mid-flight, resume in
a fresh process, require the trajectory bit-identical to uninterrupted.

Unlike the in-process round-trip tests (``tests/test_resilience.py``),
this drives the real failure: the "crash" phase SIGKILLs its own process
right after ``save_checkpoint`` — no ``atexit``, no teardown — so the
only state that survives is the checkpoint file, and the resume runs in
a separate interpreter with cold caches. The driver:

1. spawns itself in ``--phase crash``: 3 steps of the 6-cell order-8
   benchmark scene, ``save_checkpoint``, then ``SIGKILL`` (the nonzero
   exit is *expected*);
2. spawns itself in ``--phase resume``: ``load_checkpoint``, 3 more
   steps, dump the final positions/tensions;
3. runs the 6-step uninterrupted reference in-process and compares
   bitwise (``np.array_equal``).

Run:  PYTHONPATH=src python tools/kill_resume_smoke.py [--steps N]
      [--order N] [--ncells N] [--workdir DIR]

Exits 0 on bitwise equality, 1 otherwise. Wired into the nightly CI
lane (the default lanes stay tier-1 only).
"""
from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile

import numpy as np

from repro.config import NumericsOptions, ReproConfig
from repro.core import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.resilience import load_checkpoint, save_checkpoint
from repro.surfaces import biconcave_rbc


def build_scene(order: int, ncells: int) -> Simulation:
    """The benchmark reference scene (see bench_step_breakdown.py)."""
    spacing = 2.4
    cells = [biconcave_rbc(
        1.0, center=(spacing * (k // 2), spacing * (k % 2),
                     0.15 * (-1.0) ** k), order=order)
        for k in range(ncells)]
    cfg = ReproConfig(dt=0.05, viscosity=1.0,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend="direct", with_collisions=True,
                      numerics=NumericsOptions())
    return Simulation(cells, config=cfg)


def _dump_state(sim: Simulation, path: str) -> None:
    arrays = {}
    for i, c in enumerate(sim.cells):
        arrays[f"X{i}"] = c.X
        arrays[f"sigma{i}"] = sim.stepper.sigmas[i]
    arrays["t"] = np.array(sim.t)
    np.savez(path, **arrays)


def phase_crash(args) -> None:
    sim = build_scene(args.order, args.ncells)
    for _ in range(args.steps):
        sim.step()
    save_checkpoint(sim, os.path.join(args.workdir, "mid"))
    sys.stdout.flush()
    # the hard kill: no cleanup, no atexit — only the checkpoint survives
    os.kill(os.getpid(), signal.SIGKILL)


def phase_resume(args) -> None:
    sim = load_checkpoint(os.path.join(args.workdir, "mid.npz"))
    for _ in range(args.steps):
        sim.step()
    _dump_state(sim, os.path.join(args.workdir, "resumed"))


def drive(args) -> int:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) \
        + env.get("PYTHONPATH", "")

    def spawn(phase: str) -> int:
        cmd = [sys.executable, os.path.abspath(__file__),
               "--phase", phase, "--steps", str(args.steps),
               "--order", str(args.order), "--ncells", str(args.ncells),
               "--workdir", args.workdir]
        return subprocess.run(cmd, env=env).returncode

    rc = spawn("crash")
    if rc == 0:
        print("FAIL: crash phase exited cleanly; the kill never fired")
        return 1
    print(f"[smoke] crash phase killed as intended (exit {rc})")
    if spawn("resume") != 0:
        print("FAIL: resume phase crashed")
        return 1

    ref = build_scene(args.order, args.ncells)
    for _ in range(2 * args.steps):
        ref.step()
    with np.load(os.path.join(args.workdir, "resumed.npz")) as data:
        ok = True
        for i, c in enumerate(ref.cells):
            if not np.array_equal(data[f"X{i}"], c.X):
                print(f"FAIL: cell {i} positions diverged "
                      f"(max abs diff {np.abs(data[f'X{i}'] - c.X).max():.3e})")
                ok = False
            if not np.array_equal(data[f"sigma{i}"], ref.stepper.sigmas[i]):
                print(f"FAIL: cell {i} tensions diverged")
                ok = False
        if float(data["t"]) != ref.t:
            print(f"FAIL: time diverged ({float(data['t'])} vs {ref.t})")
            ok = False
    if ok:
        print(f"[smoke] OK: kill at step {args.steps}, resumed to step "
              f"{2 * args.steps} bit-identical to the uninterrupted run "
              f"({args.ncells} cells, order {args.order})")
    return 0 if ok else 1


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--phase", choices=("crash", "resume"), default=None,
                    help=argparse.SUPPRESS)  # internal: spawned phases
    ap.add_argument("--steps", type=int, default=3,
                    help="steps before the kill (and again after resume)")
    ap.add_argument("--order", type=int, default=8)
    ap.add_argument("--ncells", type=int, default=6)
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    args = ap.parse_args()
    if args.workdir is None:
        args.workdir = tempfile.mkdtemp(prefix="kill_resume_smoke_")
    if args.phase == "crash":
        phase_crash(args)
    elif args.phase == "resume":
        phase_resume(args)
    else:
        sys.exit(drive(args))


if __name__ == "__main__":
    main()

"""Kill/resume checkpoint smoke: hard-kill a run mid-flight, resume in
a fresh process, require the trajectory bit-identical to uninterrupted.

Unlike the in-process round-trip tests (``tests/test_resilience.py``),
this drives the real failure: the "crash" phase SIGKILLs its own process
right after ``save_checkpoint`` — no ``atexit``, no teardown — so the
only state that survives is the checkpoint file, and the resume runs in
a separate interpreter with cold caches. The driver:

1. spawns itself in ``--phase crash``: 3 steps of the 6-cell order-8
   benchmark scene, ``save_checkpoint``, then ``SIGKILL`` (the nonzero
   exit is *expected*);
2. spawns itself in ``--phase resume``: ``load_checkpoint``, 3 more
   steps, dump the final positions/tensions;
3. runs the 6-step uninterrupted reference in-process and compares
   bitwise (``np.array_equal``).

``--mode sweep`` drives the same story one level up, at the
:class:`repro.sweep.SweepRunner` layer: the driver spawns a multi-job
sweep, polls its manifest until at least one job has completed (but not
all), SIGKILLs the sweep process mid-flight, then re-runs the identical
sweep in a fresh interpreter and requires that (a) the resume restores
*exactly* the jobs the manifest had completed at kill time — no job
lost, none repeated — and (b) every job's final positions are bitwise
identical to running that job alone, uninterrupted.

Run:  PYTHONPATH=src python tools/kill_resume_smoke.py [--steps N]
      [--order N] [--ncells N] [--workdir DIR]
      PYTHONPATH=src python tools/kill_resume_smoke.py --mode sweep
      [--jobs N] [--steps N] [--order N] [--workdir DIR]

Exits 0 on bitwise equality, 1 otherwise. Wired into the nightly CI
lane (the default lanes stay tier-1 only).
"""
from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.config import NumericsOptions, ReproConfig
from repro.core import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.resilience import load_checkpoint, save_checkpoint
from repro.surfaces import biconcave_rbc


def build_scene(order: int, ncells: int) -> Simulation:
    """The benchmark reference scene (see bench_step_breakdown.py)."""
    spacing = 2.4
    cells = [biconcave_rbc(
        1.0, center=(spacing * (k // 2), spacing * (k % 2),
                     0.15 * (-1.0) ** k), order=order)
        for k in range(ncells)]
    cfg = ReproConfig(dt=0.05, viscosity=1.0,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend="direct", with_collisions=True,
                      numerics=NumericsOptions())
    return Simulation(cells, config=cfg)


def _dump_state(sim: Simulation, path: str) -> None:
    arrays = {}
    for i, c in enumerate(sim.cells):
        arrays[f"X{i}"] = c.X
        arrays[f"sigma{i}"] = sim.stepper.sigmas[i]
    arrays["t"] = np.array(sim.t)
    np.savez(path, **arrays)


def phase_crash(args) -> None:
    sim = build_scene(args.order, args.ncells)
    for _ in range(args.steps):
        sim.step()
    save_checkpoint(sim, os.path.join(args.workdir, "mid"))
    sys.stdout.flush()
    # the hard kill: no cleanup, no atexit — only the checkpoint survives
    os.kill(os.getpid(), signal.SIGKILL)


def phase_resume(args) -> None:
    sim = load_checkpoint(os.path.join(args.workdir, "mid.npz"))
    for _ in range(args.steps):
        sim.step()
    _dump_state(sim, os.path.join(args.workdir, "resumed"))


def _child_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) \
        + env.get("PYTHONPATH", "")
    return env


def drive(args) -> int:
    env = _child_env()

    def spawn(phase: str) -> int:
        cmd = [sys.executable, os.path.abspath(__file__),
               "--phase", phase, "--steps", str(args.steps),
               "--order", str(args.order), "--ncells", str(args.ncells),
               "--workdir", args.workdir]
        return subprocess.run(cmd, env=env).returncode

    rc = spawn("crash")
    if rc == 0:
        print("FAIL: crash phase exited cleanly; the kill never fired")
        return 1
    print(f"[smoke] crash phase killed as intended (exit {rc})")
    if spawn("resume") != 0:
        print("FAIL: resume phase crashed")
        return 1

    ref = build_scene(args.order, args.ncells)
    for _ in range(2 * args.steps):
        ref.step()
    with np.load(os.path.join(args.workdir, "resumed.npz")) as data:
        ok = True
        for i, c in enumerate(ref.cells):
            if not np.array_equal(data[f"X{i}"], c.X):
                print(f"FAIL: cell {i} positions diverged "
                      f"(max abs diff {np.abs(data[f'X{i}'] - c.X).max():.3e})")
                ok = False
            if not np.array_equal(data[f"sigma{i}"], ref.stepper.sigmas[i]):
                print(f"FAIL: cell {i} tensions diverged")
                ok = False
        if float(data["t"]) != ref.t:
            print(f"FAIL: time diverged ({float(data['t'])} vs {ref.t})")
            ok = False
    if ok:
        print(f"[smoke] OK: kill at step {args.steps}, resumed to step "
              f"{2 * args.steps} bit-identical to the uninterrupted run "
              f"({args.ncells} cells, order {args.order})")
    return 0 if ok else 1


# -- sweep mode: SIGKILL a whole SweepRunner, resume, require exactness --

def sweep_jobs(args):
    """N single-cell relaxation jobs with distinct physics (a cross-job
    mixup after resume cannot cancel out)."""
    from repro.sweep import SceneJob
    jobs = []
    for i in range(args.jobs):
        cfg = ReproConfig(dt=0.05, viscosity=1.0,
                          forces=[Bending(0.03 + 0.01 * i), Tension()],
                          backend="direct", with_collisions=False,
                          numerics=NumericsOptions())
        jobs.append(SceneJob.from_cells(
            f"job{i}", cfg, [biconcave_rbc(1.0, order=args.order)],
            n_steps=2 * args.steps))
    return jobs


def phase_sweep(args) -> None:
    """Run (or resume — same call) the sweep; dump results for the driver.

    ``max_inflight=1`` makes the manifest frontier advance per job, so
    the driver's kill always lands between manifest writes."""
    from repro.sweep import SweepRunner
    report = SweepRunner(sweep_jobs(args), executor="serial",
                         workdir=os.path.join(args.workdir, "sweep"),
                         max_inflight=1).run()
    arrays = {}
    for res in report.results:
        for ci, X in enumerate(res.positions or []):
            arrays[f"{res.job_id}_c{ci}"] = X
    np.savez(os.path.join(args.workdir, "sweep_results"), **arrays)
    with open(os.path.join(args.workdir, "sweep_report.json"), "w") as fh:
        json.dump({"restored": report.restored, "resumed": report.resumed,
                   "statuses": {r.job_id: r.status
                                for r in report.results}}, fh)


def _manifest_completed(path: str) -> set:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return set()
    return {jid for jid, entry in data.get("jobs", {}).items()
            if entry.get("status") == "completed"}


def drive_sweep(args) -> int:
    env = _child_env()

    def cmd() -> list:
        return [sys.executable, os.path.abspath(__file__),
                "--mode", "sweep", "--phase", "sweep",
                "--steps", str(args.steps), "--order", str(args.order),
                "--jobs", str(args.jobs), "--workdir", args.workdir]

    manifest = os.path.join(args.workdir, "sweep", "sweep_manifest.json")
    child = subprocess.Popen(cmd(), env=env)
    killed = False
    deadline = time.time() + 600.0
    while time.time() < deadline and child.poll() is None:
        if _manifest_completed(manifest):
            os.kill(child.pid, signal.SIGKILL)  # no cleanup, no atexit
            killed = True
            break
        time.sleep(0.01)
    child.wait()
    if not killed:
        print("FAIL: sweep finished before the kill fired")
        return 1
    done_at_kill = _manifest_completed(manifest)
    if not done_at_kill or len(done_at_kill) >= args.jobs:
        print(f"FAIL: kill window missed ({len(done_at_kill)}/"
              f"{args.jobs} jobs already complete)")
        return 1
    print(f"[smoke] sweep SIGKILLed mid-flight with "
          f"{sorted(done_at_kill)} complete")

    if subprocess.run(cmd(), env=env).returncode != 0:
        print("FAIL: sweep resume run crashed")
        return 1
    with open(os.path.join(args.workdir, "sweep_report.json")) as fh:
        report = json.load(fh)

    ok = True
    if set(report["restored"]) != done_at_kill:
        print(f"FAIL: resume restored {sorted(report['restored'])} but "
              f"{sorted(done_at_kill)} were complete at kill time "
              "(a job was lost or repeated)")
        ok = False
    bad = {j: s for j, s in report["statuses"].items() if s != "completed"}
    if bad:
        print(f"FAIL: jobs did not complete after resume: {bad}")
        ok = False

    from repro.sweep import run_scene
    with np.load(os.path.join(args.workdir, "sweep_results.npz")) as data:
        for job in sweep_jobs(args):
            ref = run_scene(job)
            for ci, X in enumerate(ref.positions):
                key = f"{job.job_id}_c{ci}"
                if not np.array_equal(data[key], X):
                    print(f"FAIL: {job.job_id} cell {ci} diverged from "
                          "its solo uninterrupted run")
                    ok = False
    if ok:
        print(f"[smoke] OK: {args.jobs}-job sweep survived SIGKILL — "
              f"resume restored {sorted(done_at_kill)} verbatim, "
              "completed the rest, all bit-identical to solo runs")
    return 0 if ok else 1


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=("single", "sweep"), default="single",
                    help="single: kill one checkpointed run; "
                         "sweep: kill a whole SweepRunner")
    ap.add_argument("--phase", choices=("crash", "resume", "sweep"),
                    default=None,
                    help=argparse.SUPPRESS)  # internal: spawned phases
    ap.add_argument("--steps", type=int, default=3,
                    help="steps before the kill (and again after resume)")
    ap.add_argument("--order", type=int, default=8)
    ap.add_argument("--ncells", type=int, default=6)
    ap.add_argument("--jobs", type=int, default=4,
                    help="sweep mode: number of scene jobs")
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    args = ap.parse_args()
    if args.workdir is None:
        args.workdir = tempfile.mkdtemp(prefix="kill_resume_smoke_")
    if args.phase == "crash":
        phase_crash(args)
    elif args.phase == "resume":
        phase_resume(args)
    elif args.phase == "sweep":
        phase_sweep(args)
    elif args.mode == "sweep":
        sys.exit(drive_sweep(args))
    else:
        sys.exit(drive(args))


if __name__ == "__main__":
    main()
